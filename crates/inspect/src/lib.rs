//! Analysis of telemetry dumps produced by `hero_rl::telemetry`
//! (`telemetry.jsonl`): terminal summaries, A-vs-B regression diffs, and
//! learning-health anomaly reports.
//!
//! Three operations, mirroring the `hero-inspect` subcommands:
//!
//! - [`summarize`] — a human-readable instrument-panel report for one run.
//! - [`diff`] — compare two runs metric-by-metric with relative tolerances;
//!   drives the CI golden-baseline gate.
//! - [`doctor`] — scan one run for known pathologies: watchdog events
//!   (non-finite gradients), dead layers (zero gradient norm), and policy
//!   entropy collapse.
//!
//! ## What `diff` compares (and what it deliberately ignores)
//!
//! Only *order-independent, seed-deterministic* statistics participate:
//! counter totals and value-histogram `count`/`mean`/`min`/`max`. Everything
//! time-dependent (span durations, rates, `elapsed_s`) and everything
//! reservoir-dependent (`p50`/`p95`/`p99`, which vary with observation order
//! under the parallel skill workers) is excluded, so a same-seed rerun diffs
//! clean while a perturbed run trips the gate. The live observability plane
//! (`gauge` and `live` records — instantaneous rollout state and wall-clock
//! latencies) is parsed into [`Run::gauges`]/[`Run::live`] but never enters
//! a diff: it describes the *process*, not the computation.
//!
//! A fourth operation, [`render_top`], turns one snapshot (a live
//! `/snapshot` scrape or a finished telemetry directory) into the
//! `hero-inspect watch` terminal view: throughput, per-actor state, queue
//! depths, and wave-latency percentiles.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use hero_telemetry::emit::{parse_jsonl, JsonValue};

/// Summary statistics of one value or span histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Stat {
    /// Number of recorded observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median estimate (reservoir; order-dependent).
    pub p50: f64,
    /// 95th-percentile estimate (reservoir; order-dependent).
    pub p95: f64,
    /// 99th-percentile estimate (reservoir; order-dependent).
    pub p99: f64,
}

/// One monotonic counter.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Counter {
    /// Final total.
    pub total: u64,
    /// Events per wall-clock second (time-dependent; never diffed).
    pub rate_per_s: f64,
}

/// A fully parsed telemetry run.
#[derive(Clone, Debug, Default)]
pub struct Run {
    /// The run label from the `meta` record.
    pub label: String,
    /// Wall-clock duration in seconds.
    pub elapsed_s: f64,
    /// Counters by name.
    pub counters: BTreeMap<String, Counter>,
    /// Span timing histograms by path.
    pub spans: BTreeMap<String, Stat>,
    /// Value histograms by metric name.
    pub values: BTreeMap<String, Stat>,
    /// Live-plane gauges (instantaneous rollout state; never diffed).
    pub gauges: BTreeMap<String, f64>,
    /// Live-plane histograms (wall-clock latencies; never diffed).
    pub live: BTreeMap<String, Stat>,
}

fn field(rec: &BTreeMap<String, JsonValue>, key: &str) -> Result<f64, String> {
    rec.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn stat_from(rec: &BTreeMap<String, JsonValue>, suffix: &str) -> Result<Stat, String> {
    let get = |base: &str| field(rec, &format!("{base}{suffix}"));
    Ok(Stat {
        count: field(rec, "count")? as u64,
        mean: get("mean")?,
        min: get("min")?,
        max: get("max")?,
        p50: get("p50")?,
        p95: get("p95")?,
        p99: get("p99")?,
    })
}

/// Parses the body of a `telemetry.jsonl` document into a [`Run`].
///
/// # Errors
///
/// Returns a line-prefixed description of the first malformed record.
pub fn parse_run(text: &str) -> Result<Run, String> {
    let records = parse_jsonl(text).map_err(|(line, e)| format!("line {line}: {e}"))?;
    let mut run = Run::default();
    for (i, rec) in records.iter().enumerate() {
        let kind = rec
            .get("type")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("record {}: missing \"type\"", i + 1))?;
        let name = || {
            rec.get("name")
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("record {}: missing \"name\"", i + 1))
        };
        match kind {
            "meta" => {
                run.label = rec
                    .get("run")
                    .and_then(JsonValue::as_str)
                    .unwrap_or_default()
                    .to_owned();
                run.elapsed_s = field(rec, "elapsed_s")?;
            }
            "counter" => {
                run.counters.insert(
                    name()?,
                    Counter {
                        total: field(rec, "total")? as u64,
                        rate_per_s: field(rec, "rate_per_s")?,
                    },
                );
            }
            "span" => {
                run.spans.insert(name()?, stat_from(rec, "_us")?);
            }
            "value" => {
                run.values.insert(name()?, stat_from(rec, "")?);
            }
            "gauge" => {
                run.gauges.insert(name()?, field(rec, "value")?);
            }
            "live" => {
                run.live.insert(name()?, stat_from(rec, "")?);
            }
            other => return Err(format!("record {}: unknown type {other:?}", i + 1)),
        }
    }
    Ok(run)
}

/// Loads a run from a `telemetry.jsonl` file, or from a directory
/// containing one.
///
/// # Errors
///
/// Returns a description of any I/O or parse failure.
pub fn load_run(path: &Path) -> Result<Run, String> {
    let file = if path.is_dir() {
        path.join("telemetry.jsonl")
    } else {
        path.to_path_buf()
    };
    let text = std::fs::read_to_string(&file)
        .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
    parse_run(&text).map_err(|e| format!("{}: {e}", file.display()))
}

// ---------------------------------------------------------------------------
// summarize
// ---------------------------------------------------------------------------

/// Renders a terminal report of one run: counters, learning-health values,
/// and the hottest spans.
#[must_use]
pub fn summarize(run: &Run) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "run {:?} ({:.2}s)", run.label, run.elapsed_s);
    if !run.counters.is_empty() {
        let _ = writeln!(out, "\ncounters:");
        for (name, c) in &run.counters {
            let _ = writeln!(out, "  {name:<32} total {:<10} {:.1}/s", c.total, c.rate_per_s);
        }
    }
    if !run.values.is_empty() {
        let _ = writeln!(out, "\nvalues:");
        for (name, v) in &run.values {
            let _ = writeln!(
                out,
                "  {name:<32} n={:<7} mean {:>12.5} min {:>12.5} max {:>12.5} p95 {:>12.5}",
                v.count, v.mean, v.min, v.max, v.p95
            );
        }
    }
    if !run.spans.is_empty() {
        let mut spans: Vec<_> = run.spans.iter().collect();
        spans.sort_by(|a, b| {
            let (ta, tb) = (a.1.mean * a.1.count as f64, b.1.mean * b.1.count as f64);
            tb.partial_cmp(&ta).unwrap_or(std::cmp::Ordering::Equal)
        });
        let _ = writeln!(out, "\nspans (by total time):");
        for (name, s) in spans {
            let _ = writeln!(
                out,
                "  {name:<32} n={:<7} total {:>10.0}us mean {:>9.1}us p95 {:>9.1}us",
                s.count,
                s.mean * s.count as f64,
                s.mean,
                s.p95
            );
        }
    }
    out
}

// ---------------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------------

/// Relative tolerances for [`diff`], expressed as fractions (0.4 = ±40%).
#[derive(Clone, Copy, Debug)]
pub struct Tolerances {
    /// Allowed relative drift of counter totals.
    pub counter: f64,
    /// Allowed relative drift of value `mean`/`min`/`max`.
    pub value: f64,
    /// Allowed relative drift of value observation counts.
    pub count: f64,
    /// Absolute slack added to every comparison, so metrics that hover
    /// around zero (e.g. `td_error` mean) don't produce unbounded relative
    /// deltas.
    pub abs_floor: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Self { counter: 0.0, value: 0.4, count: 0.1, abs_floor: 1e-3 }
    }
}

/// One compared quantity in a [`DiffReport`].
#[derive(Clone, Debug)]
pub struct DiffLine {
    /// `counter/<name>/total`, `value/<name>/mean`, etc.
    pub what: String,
    /// Baseline quantity.
    pub a: f64,
    /// Candidate quantity.
    pub b: f64,
    /// Relative delta as a percentage of the larger magnitude.
    pub delta_pct: f64,
    /// Whether the delta stayed within tolerance.
    pub within: bool,
}

/// The outcome of comparing two runs.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Every compared quantity, in deterministic name order.
    pub lines: Vec<DiffLine>,
    /// Human-readable descriptions of metrics present in only one run.
    pub missing: Vec<String>,
}

impl DiffReport {
    /// True when any quantity exceeded tolerance or a metric disappeared.
    #[must_use]
    pub fn is_regression(&self) -> bool {
        !self.missing.is_empty() || self.lines.iter().any(|l| !l.within)
    }

    /// Renders the report; with `verbose` false only violations are listed.
    #[must_use]
    pub fn render(&self, verbose: bool) -> String {
        let mut out = String::new();
        for m in &self.missing {
            let _ = writeln!(out, "MISSING  {m}");
        }
        for l in &self.lines {
            if verbose || !l.within {
                let _ = writeln!(
                    out,
                    "{}  {:<44} {:>14.5} -> {:>14.5}  ({:+.2}%)",
                    if l.within { "ok      " } else { "EXCEEDED" },
                    l.what,
                    l.a,
                    l.b,
                    l.delta_pct
                );
            }
        }
        let bad = self.lines.iter().filter(|l| !l.within).count();
        let _ = writeln!(
            out,
            "{} compared, {} exceeded tolerance, {} missing",
            self.lines.len(),
            bad,
            self.missing.len()
        );
        out
    }
}

fn compare(report: &mut DiffReport, what: String, a: f64, b: f64, tol: f64, abs_floor: f64) {
    let scale = a.abs().max(b.abs());
    let delta = (b - a).abs();
    let within = delta <= tol * scale + abs_floor;
    let delta_pct = if scale > 0.0 { 100.0 * (b - a) / scale } else { 0.0 };
    report.lines.push(DiffLine { what, a, b, delta_pct, within });
}

/// A tolerance override scoped to qualified-quantity-name prefixes, used
/// by [`diff_tolerance`]. Quantity names are the `what` strings of
/// [`DiffLine`]: `counter/<name>/total`, `value/<name>/count`,
/// `value/<name>/mean|min|max` — so `counter/` targets every counter,
/// `value/sac.` every SAC diagnostic, and a full name exactly one
/// quantity. The longest matching prefix wins.
#[derive(Clone, Debug, Default)]
pub struct PrefixTolerance {
    /// Prefix of the qualified quantity name this override applies to.
    pub prefix: String,
    /// Relative tolerance override (`None` keeps the base `rtol`).
    pub rtol: Option<f64>,
    /// Absolute tolerance override (`None` keeps the base `atol`).
    pub atol: Option<f64>,
}

/// Tolerance-mode diff for runs that are reproducible but not bitwise
/// comparable — fast-math runs differ from their golden at the ULP when
/// the host's ISA (and therefore kernel instantiation) differs, so CI
/// gates them with `|b - a| <= atol + rtol * max(|a|, |b|)` instead of
/// the bitwise/legacy tolerances of [`diff_with`].
///
/// `overrides` refine `rtol`/`atol` per qualified-name prefix (longest
/// match wins), e.g. pin `counter/` to zero — event counts must match
/// exactly even when float statistics may drift. `ignore_prefixes` works
/// as in [`diff_with`] (matched against the bare metric name).
#[must_use]
pub fn diff_tolerance(
    a: &Run,
    b: &Run,
    rtol: f64,
    atol: f64,
    overrides: &[PrefixTolerance],
    ignore_prefixes: &[String],
) -> DiffReport {
    let tol_for = |what: &str| {
        let best = overrides
            .iter()
            .filter(|o| what.starts_with(o.prefix.as_str()))
            .max_by_key(|o| o.prefix.len());
        match best {
            Some(o) => (o.rtol.unwrap_or(rtol), o.atol.unwrap_or(atol)),
            None => (rtol, atol),
        }
    };
    diff_core(a, b, ignore_prefixes, &tol_for)
}

/// Compares run `b` (candidate) against run `a` (baseline).
///
/// Counter totals and value `count`/`mean`/`min`/`max` are compared under
/// `tol`; spans, rates, percentiles, and `elapsed_s` are ignored (see the
/// module docs). Metrics present in only one run are reported in
/// [`DiffReport::missing`].
#[must_use]
pub fn diff(a: &Run, b: &Run, tol: &Tolerances) -> DiffReport {
    diff_with(a, b, tol, &[])
}

/// [`diff`] with metric-name prefixes excluded from the comparison.
///
/// A counter or value whose name starts with any of `ignore_prefixes` is
/// neither compared nor reported missing. The kill-and-resume CI gate
/// uses `checkpoint/` here: a resumed run legitimately accrues extra
/// `checkpoint/loaded`-style bookkeeping while every learning metric must
/// still match the uninterrupted run bit-for-bit.
#[must_use]
pub fn diff_with(a: &Run, b: &Run, tol: &Tolerances, ignore_prefixes: &[String]) -> DiffReport {
    let tol = *tol;
    let tol_for = move |what: &str| {
        if what.starts_with("counter/") {
            (tol.counter, tol.abs_floor)
        } else if what.ends_with("/count") {
            (tol.count, tol.abs_floor)
        } else {
            (tol.value, tol.abs_floor)
        }
    };
    diff_core(a, b, ignore_prefixes, &tol_for)
}

/// Shared walk over both runs' counters and value statistics; every
/// quantity's `(rtol, atol)` pair comes from `tol_for`, keyed by the
/// qualified name (`counter/<name>/total`, `value/<name>/mean`, ...).
fn diff_core(
    a: &Run,
    b: &Run,
    ignore_prefixes: &[String],
    tol_for: &dyn Fn(&str) -> (f64, f64),
) -> DiffReport {
    let ignored = |name: &str| ignore_prefixes.iter().any(|p| name.starts_with(p.as_str()));
    let push = |report: &mut DiffReport, what: String, a: f64, b: f64| {
        let (rtol, atol) = tol_for(&what);
        compare(report, what, a, b, rtol, atol);
    };
    let mut report = DiffReport::default();
    for (name, ca) in &a.counters {
        if ignored(name) {
            continue;
        }
        match b.counters.get(name) {
            Some(cb) => push(
                &mut report,
                format!("counter/{name}/total"),
                ca.total as f64,
                cb.total as f64,
            ),
            None => report.missing.push(format!("counter {name:?} absent from candidate")),
        }
    }
    for name in b.counters.keys() {
        if !a.counters.contains_key(name) && !ignored(name) {
            report.missing.push(format!("counter {name:?} absent from baseline"));
        }
    }
    for (name, va) in &a.values {
        if ignored(name) {
            continue;
        }
        match b.values.get(name) {
            Some(vb) => {
                push(
                    &mut report,
                    format!("value/{name}/count"),
                    va.count as f64,
                    vb.count as f64,
                );
                for (fieldname, fa, fb) in [
                    ("mean", va.mean, vb.mean),
                    ("min", va.min, vb.min),
                    ("max", va.max, vb.max),
                ] {
                    push(&mut report, format!("value/{name}/{fieldname}"), fa, fb);
                }
            }
            None => report.missing.push(format!("value {name:?} absent from candidate")),
        }
    }
    for name in b.values.keys() {
        if !a.values.contains_key(name) && !ignored(name) {
            report.missing.push(format!("value {name:?} absent from baseline"));
        }
    }
    report
}

// ---------------------------------------------------------------------------
// doctor
// ---------------------------------------------------------------------------

/// Severity of a [`Finding`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Worth a look but not necessarily fatal.
    Warning,
    /// Learning is almost certainly broken.
    Critical,
}

/// One anomaly discovered by [`doctor`].
#[derive(Clone, Debug)]
pub struct Finding {
    /// How bad it is.
    pub severity: Severity,
    /// What was observed and why it matters.
    pub message: String,
}

/// Policy-entropy floor below which [`doctor`] reports collapse.
pub const ENTROPY_COLLAPSE_FLOOR: f64 = 0.01;

/// Scans a run for known learning pathologies:
///
/// - **NaN events** — non-zero `watchdog/*` counters mean the optimizer
///   screened out poisoned gradients (critical: the loss surface produced
///   non-finite values).
/// - **Dead layers** — a `grad_norm/*` histogram whose `max` is exactly zero
///   means that layer never received gradient (warning: frozen or
///   disconnected parameters).
/// - **Entropy collapse** — an `entropy/*` mean below
///   [`ENTROPY_COLLAPSE_FLOOR`] nats means the high-level policy has
///   become deterministic (warning: exploration is gone).
/// - **Checkpoint health** — `checkpoint/dropped > 0` means a snapshot was
///   abandoned after exhausting its IO retries (critical: a crash after
///   that point loses more work than `--checkpoint-every` promises);
///   non-zero `checkpoint/save_failed`, `checkpoint/fallback`, or
///   `checkpoint/corrupt_skipped` are warnings that storage is flaky or a
///   checkpoint file was corrupted and an older one had to be used.
/// - **Stalled actors** — `actor/stalled > 0` means the learner timed out
///   waiting on an actor and re-dispatched its work (warning: an actor
///   thread wedged or fell far behind; the run completed but slower than
///   its actor count promises).
/// - **Supervision** — `actor/panicked` / `actor/respawned` warn that
///   actor threads died and were replaced (the run self-healed, but the
///   faults deserve a look); `supervisor/degraded` warns that a slot
///   exhausted its respawn budget and was retired, shrinking the fleet
///   for the rest of the run; `supervisor/fleet_lost` or
///   `supervisor/emergency_skipped` are critical — the run aborted early,
///   and in the `emergency_skipped` case without a recoverable
///   checkpoint.
#[must_use]
pub fn doctor(run: &Run) -> Vec<Finding> {
    let mut findings = Vec::new();
    if let Some(c) = run.counters.get("actor/stalled") {
        if c.total > 0 {
            findings.push(Finding {
                severity: Severity::Warning,
                message: format!(
                    "actor/stalled = {} — the learner timed out waiting on an actor and \
                     re-dispatched its work; a rollout thread wedged or fell far behind",
                    c.total
                ),
            });
        }
    }
    for (name, why) in [
        ("actor/panicked", "actor threads died mid-run; check the flight recorder for payloads"),
        (
            "actor/respawned",
            "the supervisor replaced failed actor threads; the run self-healed but the root \
             cause deserves a look",
        ),
        (
            "supervisor/degraded",
            "an actor slot exhausted its respawn budget and was retired; the fleet ran \
             degraded from that point on",
        ),
    ] {
        if let Some(c) = run.counters.get(name) {
            if c.total > 0 {
                findings.push(Finding {
                    severity: Severity::Warning,
                    message: format!("{name} = {} — {why}", c.total),
                });
            }
        }
    }
    if let Some(c) = run.counters.get("supervisor/fleet_lost") {
        if c.total > 0 {
            let saved =
                run.counters.get("supervisor/emergency_saved").is_some_and(|c| c.total > 0);
            findings.push(Finding {
                severity: Severity::Critical,
                message: format!(
                    "supervisor/fleet_lost = {} — every actor died and the run aborted early{}",
                    c.total,
                    if saved {
                        "; an emergency checkpoint was saved, rerun with --resume"
                    } else {
                        ", with no boundary-clean state to emergency-checkpoint"
                    }
                ),
            });
        }
    }
    for (name, c) in &run.counters {
        if name.starts_with("watchdog/") && c.total > 0 {
            findings.push(Finding {
                severity: Severity::Critical,
                message: format!(
                    "{name} = {} — non-finite gradients were produced during training",
                    c.total
                ),
            });
        }
    }
    if let Some(c) = run.counters.get("checkpoint/dropped") {
        if c.total > 0 {
            findings.push(Finding {
                severity: Severity::Critical,
                message: format!(
                    "checkpoint/dropped = {} — snapshots were abandoned after exhausting IO \
                     retries; a crash now loses more work than the checkpoint cadence promises",
                    c.total
                ),
            });
        }
    }
    for (name, why) in [
        ("checkpoint/save_failed", "checkpoint writes hit IO errors (retries recovered them)"),
        ("checkpoint/fallback", "the newest checkpoint was unreadable and an older one was used"),
        ("checkpoint/corrupt_skipped", "corrupt checkpoint files were skipped during recovery"),
    ] {
        if let Some(c) = run.counters.get(name) {
            if c.total > 0 {
                findings.push(Finding {
                    severity: Severity::Warning,
                    message: format!("{name} = {} — {why}", c.total),
                });
            }
        }
    }
    for (name, v) in &run.values {
        if name.starts_with("grad_norm/") && v.count > 0 && v.max == 0.0 {
            findings.push(Finding {
                severity: Severity::Warning,
                message: format!(
                    "{name} never left zero over {} updates — dead or disconnected layer",
                    v.count
                ),
            });
        }
        if name.starts_with("entropy/") && v.count > 0 && v.mean < ENTROPY_COLLAPSE_FLOOR {
            findings.push(Finding {
                severity: Severity::Warning,
                message: format!(
                    "{name} mean {:.4} nats < {ENTROPY_COLLAPSE_FLOOR} — policy entropy \
                     collapse, exploration has stopped",
                    v.mean
                ),
            });
        }
    }
    findings
}

/// Training-throughput summary from a run's counters: environment steps
/// and gradient updates per wall-clock second. Kept separate from
/// [`doctor`] findings — throughput is information, not a pathology.
#[must_use]
pub fn throughput_report(run: &Run) -> String {
    let mut out = String::new();
    for (counter, label) in [("env_steps", "env_steps/s"), ("grad_updates", "grad_updates/s")] {
        match run.counters.get(counter) {
            Some(c) => {
                let _ = writeln!(out, "throughput  {label:<15} {:>10.1}  (total {})", c.rate_per_s, c.total);
            }
            None => {
                let _ = writeln!(out, "throughput  {label:<15}        n/a  (counter {counter:?} absent)");
            }
        }
    }
    out
}

/// Kernel-throughput summary from a `BENCH_train_throughput.json` next to
/// the run (searched in the run directory, then the current directory).
/// Prints the recorded matmul GFLOP/s — per kernel tier when the bench
/// was produced by a fast-math build — so `doctor` shows at a glance
/// whether the machine's measured compute matches expectations. Empty
/// when no bench file is found or it predates the GFLOP/s fields:
/// absence of a benchmark is not a pathology.
#[must_use]
pub fn bench_report(run_path: &Path) -> String {
    let run_dir = if run_path.is_dir() { run_path } else { run_path.parent().unwrap_or(run_path) };
    let mut out = String::new();
    for dir in [run_dir, Path::new(".")] {
        let path = dir.join("BENCH_train_throughput.json");
        let Ok(text) = std::fs::read_to_string(&path) else { continue };
        let Ok(fields) = hero_telemetry::emit::parse_json_object(&text) else {
            let _ = writeln!(out, "bench  {} unreadable (not a JSON object)", path.display());
            return out;
        };
        let num = |key: &str| fields.get(key).and_then(JsonValue::as_f64);
        let mut rows: Vec<(String, f64)> = Vec::new();
        if let Some(g) = num("matmul_gflops_strict").or_else(|| num("matmul_gflops")) {
            rows.push(("matmul GFLOP/s (strict)".into(), g));
        }
        if let Some(g) = num("matmul_gflops_fast") {
            rows.push(("matmul GFLOP/s (fast)".into(), g));
            for t in [1usize, 2, 4] {
                if let Some(gt) = num(&format!("matmul_gflops_fast_t{t}")) {
                    rows.push((format!("matmul GFLOP/s (fast, {t} thr)"), gt));
                }
            }
            if let Some(s) = num("fast_vs_strict_speedup") {
                rows.push(("fast / strict speedup".into(), s));
            }
        }
        if rows.is_empty() {
            return out;
        }
        let dim = num("matmul_mode_dim").or_else(|| num("matmul_dim")).unwrap_or(0.0);
        let isa = fields.get("isa").and_then(JsonValue::as_str).unwrap_or("unknown");
        let _ = writeln!(out, "bench  {} (dim {dim:.0}, isa {isa})", path.display());
        for (label, v) in rows {
            let _ = writeln!(out, "bench  {label:<28} {v:>10.1}");
        }
        return out;
    }
    out
}

/// Serving-latency summary from a `BENCH_serve_latency.json` next to the
/// run (searched in the run directory, then the current directory):
/// offered throughput, tail latency, and batch occupancy as recorded by
/// `scripts/bench_serve.sh`. Also returns a [`Finding`] when the mean
/// batch occupancy sits at ≈1 row per forward pass despite a wider
/// `max_batch` — the daemon is paying the micro-batching machinery
/// without coalescing anything, which usually means the offered load is
/// too low or the batch deadline is too short. Empty when no bench file
/// is found: absence of a serving benchmark is not a pathology.
#[must_use]
pub fn serve_report(run_path: &Path) -> (String, Vec<Finding>) {
    let run_dir = if run_path.is_dir() { run_path } else { run_path.parent().unwrap_or(run_path) };
    let mut out = String::new();
    let mut findings = Vec::new();
    for dir in [run_dir, Path::new(".")] {
        let path = dir.join("BENCH_serve_latency.json");
        let Ok(text) = std::fs::read_to_string(&path) else { continue };
        let Ok(fields) = hero_telemetry::emit::parse_json_object(&text) else {
            let _ = writeln!(out, "serve  {} unreadable (not a JSON object)", path.display());
            return (out, findings);
        };
        let num = |key: &str| fields.get(key).and_then(JsonValue::as_f64);
        let (Some(rps), Some(p99)) = (num("requests_per_s"), num("p99_us")) else {
            let _ = writeln!(
                out,
                "serve  {} lacks requests_per_s / p99_us fields",
                path.display()
            );
            return (out, findings);
        };
        let _ = writeln!(out, "serve  {}", path.display());
        let _ = writeln!(out, "serve  requests/s                   {rps:>10.1}");
        if let Some(p50) = num("p50_us") {
            let _ = writeln!(out, "serve  p50 latency (us)             {p50:>10.1}");
        }
        if let Some(p95) = num("p95_us") {
            let _ = writeln!(out, "serve  p95 latency (us)             {p95:>10.1}");
        }
        let _ = writeln!(out, "serve  p99 latency (us)             {p99:>10.1}");
        if let Some(occ) = num("batch_occupancy") {
            let _ = writeln!(out, "serve  batch occupancy (rows/pass)  {occ:>10.2}");
        }
        if let Some(s) = num("batched_vs_single_speedup") {
            let _ = writeln!(out, "serve  batched / single speedup     {s:>10.2}");
        }
        let max_batch = num("max_batch").unwrap_or(f64::INFINITY);
        if let Some(occ) = num("batch_occupancy") {
            if occ <= 1.05 && max_batch > 1.0 {
                findings.push(Finding {
                    severity: Severity::Warning,
                    message: format!(
                        "serving batch occupancy = {occ:.2} rows per forward pass with \
                         max_batch {max_batch:.0} — micro-batching is not engaging; the \
                         offered load is too low for the batch deadline, so the daemon \
                         pays dispatcher overhead for no coalescing win"
                    ),
                });
            }
        }
        return (out, findings);
    }
    (out, findings)
}

/// Per-actor channel-pressure summary from the live plane: the maximum
/// observed `live/queue_depth/<actor>` over the run. Information, not a
/// pathology — a persistently full queue just means the learner (not the
/// actors) is the bottleneck. Empty when the run has no live telemetry.
#[must_use]
pub fn queue_depth_report(run: &Run) -> String {
    let mut out = String::new();
    for (name, s) in &run.live {
        if let Some(actor) = name.strip_prefix("live/queue_depth/") {
            let _ = writeln!(
                out,
                "queue  {actor:<10} max depth {:>4.0}  (mean {:.1} over {} sends)",
                s.max, s.mean, s.count
            );
        }
    }
    out
}

// ---------------------------------------------------------------------------
// watch (hero-top)
// ---------------------------------------------------------------------------

/// Renders one `hero-inspect watch` frame ("hero-top") from a snapshot:
/// throughput, per-actor state (queue depth, utilization, heartbeat age),
/// aggregate queue pressure, and wave/update/checkpoint latency
/// percentiles. Pure: same [`Run`] in, same text out — the subcommand
/// loops this over fresh `/snapshot` scrapes.
#[must_use]
pub fn render_top(run: &Run) -> String {
    let gauge = |name: &str| run.gauges.get(name).copied();
    let mut out = String::new();
    let _ = writeln!(out, "hero-top  run {:?}  elapsed {:.1}s", run.label, run.elapsed_s);

    let _ = write!(out, "\nthroughput ");
    for (counter, label) in
        [("env_steps", "env_steps/s"), ("episodes", "episodes/s"), ("grad_updates", "updates/s")]
    {
        match run.counters.get(counter) {
            Some(c) => {
                let _ = write!(out, "  {label} {:.1} (total {})", c.rate_per_s, c.total);
            }
            None => {
                let _ = write!(out, "  {label} n/a");
            }
        }
    }
    let _ = writeln!(out);

    let actors_total = gauge("live/actors_total");
    match actors_total {
        None => {
            let _ = writeln!(
                out,
                "\nno live rollout telemetry in this snapshot (sequential trainer, or the \
                 run predates the live plane)"
            );
        }
        Some(total) => {
            let busy = gauge("live/actors_busy").unwrap_or(0.0);
            let depth = gauge("live/queue_depth_total").unwrap_or(0.0);
            let _ = writeln!(
                out,
                "\nactors     {busy:.0}/{total:.0} busy   aggregate queue depth {depth:.0}"
            );
            for k in 0.. {
                let name = format!("actor{k}");
                let now = gauge(&format!("live/queue_depth_now/{name}"));
                let util = gauge(&format!("live/actor_util/{name}"));
                let beat = gauge(&format!("live/heartbeat_s/{name}"));
                if now.is_none() && util.is_none() && beat.is_none() {
                    break;
                }
                let max = run
                    .live
                    .get(&format!("live/queue_depth/{name}"))
                    .map_or(0.0, |s| s.max);
                let _ = writeln!(
                    out,
                    "  {name:<8} q now {:>3.0}  q max {max:>3.0}  util {:>5.2}  \
                     heartbeat {:>6.1}s ago",
                    now.unwrap_or(0.0),
                    util.unwrap_or(0.0),
                    beat.map_or(f64::NAN, |b| (run.elapsed_s - b).max(0.0)),
                );
            }
        }
    }

    let mut latency_rows = String::new();
    for (name, label) in [
        ("live/wave_us", "wave dispatch->complete"),
        ("live/learner_update_us", "learner update loop"),
        ("live/checkpoint_write_us", "checkpoint write"),
    ] {
        if let Some(s) = run.live.get(name) {
            let _ = writeln!(
                latency_rows,
                "  {label:<24} p50 {:>9.0}us  p95 {:>9.0}us  p99 {:>9.0}us  (n={})",
                s.p50, s.p95, s.p99, s.count
            );
        }
    }
    if !latency_rows.is_empty() {
        let _ = writeln!(out, "\nlatency");
        out.push_str(&latency_rows);
    }

    if let Some(c) = run.counters.get("actor/stalled") {
        if c.total > 0 {
            let _ = writeln!(out, "\n!! {} stalled-actor re-dispatch(es) — see doctor", c.total);
        }
    }
    if let Some(c) = run.counters.get("actor/respawned") {
        if c.total > 0 {
            let _ = writeln!(out, "!! {} actor respawn(s) — see doctor", c.total);
        }
    }
    if let Some(c) = run.counters.get("supervisor/degraded") {
        if c.total > 0 {
            let _ = writeln!(out, "!! {} retired actor slot(s) — fleet is degraded", c.total);
        }
    }
    out
}

/// Renders doctor findings (or a clean bill of health).
#[must_use]
pub fn render_findings(findings: &[Finding]) -> String {
    if findings.is_empty() {
        return "healthy: no watchdog events, dead layers, or entropy collapse\n".into();
    }
    let mut out = String::new();
    for f in findings {
        let tag = match f.severity {
            Severity::Warning => "WARN",
            Severity::Critical => "CRIT",
        };
        let _ = writeln!(out, "{tag}  {}", f.message);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"
{"type":"meta","run":"a","elapsed_s":1.5}
{"type":"counter","name":"episodes","total":4,"rate_per_s":2.6}
{"type":"counter","name":"grad_updates","total":100,"rate_per_s":66.0}
{"type":"span","name":"rollout","count":4,"total_us":900,"mean_us":225,"min_us":200,"max_us":250,"p50_us":220,"p95_us":249,"p99_us":250}
{"type":"value","name":"td_error","count":64,"mean":0.02,"min":-1.5,"max":1.75,"p50":0.01,"p95":1.2,"p99":1.6}
{"type":"value","name":"entropy/agent0","count":32,"mean":1.05,"min":0.9,"max":1.1,"p50":1.0,"p95":1.1,"p99":1.1}
"#;

    #[test]
    fn parses_all_record_kinds() {
        let run = parse_run(BASE).unwrap();
        assert_eq!(run.label, "a");
        assert_eq!(run.counters["episodes"].total, 4);
        assert_eq!(run.spans["rollout"].count, 4);
        assert_eq!(run.values["td_error"].count, 64);
        assert!((run.values["entropy/agent0"].mean - 1.05).abs() < 1e-12);
    }

    #[test]
    fn parse_rejects_unknown_type() {
        assert!(parse_run("{\"type\":\"bogus\",\"name\":\"x\"}").is_err());
    }

    #[test]
    fn throughput_report_uses_counter_rates() {
        let run = parse_run(BASE).unwrap();
        let text = throughput_report(&run);
        assert!(text.contains("grad_updates/s"), "{text}");
        assert!(text.contains("66.0"), "{text}");
        // env_steps is absent from this fixture: reported, not invented.
        assert!(text.contains("env_steps/s"), "{text}");
        assert!(text.contains("n/a"), "{text}");
    }

    #[test]
    fn summarize_mentions_every_metric() {
        let run = parse_run(BASE).unwrap();
        let text = summarize(&run);
        for needle in ["episodes", "grad_updates", "td_error", "entropy/agent0", "rollout"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn identical_runs_diff_clean() {
        let run = parse_run(BASE).unwrap();
        let report = diff(&run, &run, &Tolerances::default());
        assert!(!report.is_regression(), "{}", report.render(true));
        assert!(report.lines.iter().all(|l| l.delta_pct == 0.0));
    }

    #[test]
    fn perturbed_counter_total_is_a_regression() {
        let a = parse_run(BASE).unwrap();
        let mut b = a.clone();
        b.counters.get_mut("grad_updates").unwrap().total = 150;
        let report = diff(&a, &b, &Tolerances::default());
        assert!(report.is_regression());
        assert!(report
            .lines
            .iter()
            .any(|l| l.what == "counter/grad_updates/total" && !l.within));
    }

    #[test]
    fn value_drift_within_tolerance_passes_and_beyond_fails() {
        let a = parse_run(BASE).unwrap();
        let mut b = a.clone();
        b.values.get_mut("entropy/agent0").unwrap().mean = 1.05 * 1.2;
        assert!(!diff(&a, &b, &Tolerances::default()).is_regression());
        b.values.get_mut("entropy/agent0").unwrap().mean = 1.05 * 2.0;
        assert!(diff(&a, &b, &Tolerances::default()).is_regression());
    }

    #[test]
    fn near_zero_means_use_the_absolute_floor() {
        // td_error mean 0.02 vs 0.0205: 2.5% relative but tiny absolutely.
        let a = parse_run(BASE).unwrap();
        let mut b = a.clone();
        b.values.get_mut("td_error").unwrap().mean = 0.0205;
        assert!(!diff(&a, &b, &Tolerances::default()).is_regression());
    }

    #[test]
    fn missing_metric_is_a_regression_both_ways() {
        let a = parse_run(BASE).unwrap();
        let mut b = a.clone();
        b.values.remove("entropy/agent0");
        let report = diff(&a, &b, &Tolerances::default());
        assert!(report.is_regression());
        assert!(report.missing[0].contains("absent from candidate"));
        let report = diff(&b, &a, &Tolerances::default());
        assert!(report.missing[0].contains("absent from baseline"));
    }

    #[test]
    fn spans_and_rates_never_participate_in_diff() {
        let a = parse_run(BASE).unwrap();
        let mut b = a.clone();
        b.spans.get_mut("rollout").unwrap().mean = 1e9;
        b.counters.get_mut("episodes").unwrap().rate_per_s = 1e9;
        b.elapsed_s = 1e9;
        assert!(!diff(&a, &b, &Tolerances::default()).is_regression());
    }

    #[test]
    fn tolerance_diff_gates_on_rtol_and_atol() {
        let a = parse_run(BASE).unwrap();
        let mut b = a.clone();
        // 10% drift on a value mean: inside rtol 0.2, outside rtol 0.05.
        b.values.get_mut("entropy/agent0").unwrap().mean = 1.05 * 1.1;
        assert!(!diff_tolerance(&a, &b, 0.2, 0.0, &[], &[]).is_regression());
        assert!(diff_tolerance(&a, &b, 0.05, 0.0, &[], &[]).is_regression());
        // A pure atol catches the same drift in absolute terms.
        assert!(!diff_tolerance(&a, &b, 0.0, 0.2, &[], &[]).is_regression());
        assert!(diff_tolerance(&a, &b, 0.0, 0.05, &[], &[]).is_regression());
    }

    #[test]
    fn tolerance_diff_prefix_override_longest_match_wins() {
        let a = parse_run(BASE).unwrap();
        let mut b = a.clone();
        b.counters.get_mut("grad_updates").unwrap().total = 101;
        // Base rtol is generous, but `counter/` pinned to zero trips on a
        // one-count drift.
        let pin_counters = [PrefixTolerance {
            prefix: "counter/".into(),
            rtol: Some(0.0),
            atol: Some(0.0),
        }];
        assert!(!diff_tolerance(&a, &b, 0.5, 0.0, &[], &[]).is_regression());
        assert!(diff_tolerance(&a, &b, 0.5, 0.0, &pin_counters, &[]).is_regression());
        // A longer, more specific prefix re-opens one counter.
        let reopened = [
            pin_counters[0].clone(),
            PrefixTolerance {
                prefix: "counter/grad_updates/".into(),
                rtol: Some(0.5),
                atol: None,
            },
        ];
        assert!(!diff_tolerance(&a, &b, 0.5, 0.0, &reopened, &[]).is_regression());
    }

    #[test]
    fn tolerance_diff_honors_ignore_prefixes_and_missing_metrics() {
        let a = parse_run(BASE).unwrap();
        let mut b = a.clone();
        b.values.remove("entropy/agent0");
        let report = diff_tolerance(&a, &b, 0.5, 0.0, &[], &[]);
        assert!(report.is_regression());
        assert!(report.missing[0].contains("absent from candidate"));
        let ignore = ["entropy/".to_string()];
        assert!(!diff_tolerance(&a, &b, 0.5, 0.0, &[], &ignore).is_regression());
    }

    #[test]
    fn bench_report_reads_gflops_fields() {
        let dir = std::env::temp_dir().join(format!("hero-benchrep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("BENCH_train_throughput.json"),
            "{\"bench\": \"train_throughput\", \"isa\": \"avx512f\", \"matmul_mode_dim\": 256,\n \
             \"matmul_gflops_strict\": 34.8, \"matmul_gflops_fast\": 90.9,\n \
             \"matmul_gflops_fast_t1\": 90.9, \"fast_vs_strict_speedup\": 2.61}",
        )
        .unwrap();
        let text = bench_report(&dir);
        assert!(text.contains("34.8") && text.contains("90.9"), "{text}");
        assert!(text.contains("avx512f") && text.contains("dim 256"), "{text}");
        assert!(text.contains("speedup"), "{text}");
        // A run *file* inside the directory resolves to the same report.
        let via_file = bench_report(&dir.join("telemetry.jsonl"));
        assert_eq!(via_file, text);
        // Legacy bench files (strict-only field names) still report.
        std::fs::write(
            dir.join("BENCH_train_throughput.json"),
            "{\"matmul_dim\": 128, \"matmul_gflops\": 36.9}",
        )
        .unwrap();
        let text = bench_report(&dir);
        assert!(text.contains("36.9") && text.contains("strict"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_report_reads_latency_fields_and_flags_idle_batching() {
        let dir = std::env::temp_dir().join(format!("hero-servrep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("BENCH_serve_latency.json"),
            "{\"bench\": \"serve_latency\", \"requests_per_s\": 412.7, \"p50_us\": 1800.0,\n \
             \"p95_us\": 4100.0, \"p99_us\": 6300.0, \"batch_occupancy\": 5.4,\n \
             \"max_batch\": 32, \"batched_vs_single_speedup\": 2.9}",
        )
        .unwrap();
        let (text, findings) = serve_report(&dir);
        assert!(text.contains("412.7") && text.contains("6300.0"), "{text}");
        assert!(text.contains("5.40") && text.contains("2.90"), "{text}");
        assert!(findings.is_empty(), "healthy occupancy flagged: {findings:?}");
        // A run *file* inside the directory resolves to the same report.
        let (via_file, _) = serve_report(&dir.join("telemetry.jsonl"));
        assert_eq!(via_file, text);
        // Occupancy pinned at ~1 row per pass means batching never engaged.
        std::fs::write(
            dir.join("BENCH_serve_latency.json"),
            "{\"requests_per_s\": 80.0, \"p99_us\": 900.0, \"batch_occupancy\": 1.01,\n \
             \"max_batch\": 32}",
        )
        .unwrap();
        let (_, findings) = serve_report(&dir);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].severity, Severity::Warning);
        assert!(findings[0].message.contains("not engaging"), "{}", findings[0].message);
        // ...but occupancy 1 with max_batch 1 is the configured baseline,
        // not a pathology.
        std::fs::write(
            dir.join("BENCH_serve_latency.json"),
            "{\"requests_per_s\": 80.0, \"p99_us\": 900.0, \"batch_occupancy\": 1.0,\n \
             \"max_batch\": 1}",
        )
        .unwrap();
        let (_, findings) = serve_report(&dir);
        assert!(findings.is_empty(), "{findings:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn doctor_flags_watchdog_dead_layer_and_collapse() {
        let text = r#"
{"type":"meta","run":"sick","elapsed_s":9}
{"type":"counter","name":"watchdog/skipped_updates","total":3,"rate_per_s":0.3}
{"type":"value","name":"grad_norm/actor/l1","count":50,"mean":0,"min":0,"max":0,"p50":0,"p95":0,"p99":0}
{"type":"value","name":"entropy/agent0","count":50,"mean":0.001,"min":0,"max":0.002,"p50":0.001,"p95":0.002,"p99":0.002}
"#;
        let findings = doctor(&parse_run(text).unwrap());
        assert_eq!(findings.len(), 3, "{findings:?}");
        assert!(findings.iter().any(|f| f.severity == Severity::Critical
            && f.message.contains("watchdog/skipped_updates")));
        assert!(findings.iter().any(|f| f.message.contains("dead or disconnected")));
        assert!(findings.iter().any(|f| f.message.contains("entropy collapse")));
        assert!(render_findings(&findings).contains("CRIT"));
    }

    #[test]
    fn doctor_healthy_run_is_clean() {
        let findings = doctor(&parse_run(BASE).unwrap());
        assert!(findings.is_empty(), "{findings:?}");
        assert!(render_findings(&findings).contains("healthy"));
    }

    #[test]
    fn diff_with_ignores_prefixed_metrics_on_either_side() {
        let a = parse_run(BASE).unwrap();
        let mut b = a.clone();
        // Resumed runs accrue checkpoint bookkeeping the baseline lacks,
        // and vice versa — both directions must be excluded.
        b.counters.insert(
            "checkpoint/loaded".into(),
            Counter { total: 1, rate_per_s: 0.1 },
        );
        let mut a2 = a.clone();
        a2.counters.insert(
            "checkpoint/saved".into(),
            Counter { total: 5, rate_per_s: 0.5 },
        );
        let ignore = vec!["checkpoint/".to_string()];
        let report = diff_with(&a2, &b, &Tolerances::default(), &ignore);
        assert!(!report.is_regression(), "{}", report.render(true));
        // Without the ignore list the same comparison trips on both sides.
        assert!(diff(&a2, &b, &Tolerances::default()).is_regression());
    }

    #[test]
    fn doctor_flags_checkpoint_problems() {
        let text = r#"
{"type":"meta","run":"flaky","elapsed_s":9}
{"type":"counter","name":"checkpoint/dropped","total":1,"rate_per_s":0.1}
{"type":"counter","name":"checkpoint/save_failed","total":2,"rate_per_s":0.2}
{"type":"counter","name":"checkpoint/fallback","total":1,"rate_per_s":0.1}
{"type":"counter","name":"checkpoint/corrupt_skipped","total":1,"rate_per_s":0.1}
"#;
        let findings = doctor(&parse_run(text).unwrap());
        assert_eq!(findings.len(), 4, "{findings:?}");
        assert!(findings.iter().any(|f| f.severity == Severity::Critical
            && f.message.contains("checkpoint/dropped")));
        assert!(findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .count()
            == 3);
    }

    const LIVE: &str = r#"
{"type":"meta","run":"live","elapsed_s":10.0}
{"type":"counter","name":"env_steps","total":5000,"rate_per_s":500.0}
{"type":"counter","name":"episodes","total":20,"rate_per_s":2.0}
{"type":"gauge","name":"live/actors_total","value":2}
{"type":"gauge","name":"live/actors_busy","value":1}
{"type":"gauge","name":"live/queue_depth_total","value":3}
{"type":"gauge","name":"live/queue_depth_now/actor0","value":3}
{"type":"gauge","name":"live/queue_depth_now/actor1","value":0}
{"type":"gauge","name":"live/actor_util/actor0","value":0.9}
{"type":"gauge","name":"live/heartbeat_s/actor0","value":9.8}
{"type":"live","name":"live/queue_depth/actor0","count":40,"mean":2.5,"min":1,"max":8,"p50":2,"p95":6,"p99":8}
{"type":"live","name":"live/wave_us","count":20,"mean":1500,"min":900,"max":4000,"p50":1400,"p95":3000,"p99":3900}
"#;

    #[test]
    fn parses_gauge_and_live_records_into_their_own_maps() {
        let run = parse_run(LIVE).unwrap();
        assert_eq!(run.gauges["live/actors_total"], 2.0);
        assert_eq!(run.live["live/queue_depth/actor0"].max, 8.0);
        // They are NOT values/counters, so they can never enter a diff.
        assert!(!run.values.contains_key("live/queue_depth/actor0"));
        assert!(!run.counters.contains_key("live/actors_total"));
    }

    #[test]
    fn live_plane_never_participates_in_diff() {
        let a = parse_run(LIVE).unwrap();
        let mut b = a.clone();
        b.gauges.insert("live/queue_depth_total".into(), 999.0);
        b.live.get_mut("live/wave_us").unwrap().mean = 1e9;
        b.live.remove("live/queue_depth/actor0");
        let report = diff(&a, &b, &Tolerances::default());
        assert!(!report.is_regression(), "{}", report.render(true));
    }

    #[test]
    fn doctor_warns_on_stalled_actors() {
        let text = r#"
{"type":"meta","run":"stalled","elapsed_s":9}
{"type":"counter","name":"actor/stalled","total":1,"rate_per_s":0.1}
"#;
        let findings = doctor(&parse_run(text).unwrap());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].severity, Severity::Warning);
        assert!(findings[0].message.contains("actor/stalled = 1"));
    }

    #[test]
    fn doctor_warns_on_supervision_activity_and_flags_fleet_loss() {
        let text = r#"
{"type":"meta","run":"chaos","elapsed_s":9}
{"type":"counter","name":"actor/panicked","total":1,"rate_per_s":0.1}
{"type":"counter","name":"actor/respawned","total":2,"rate_per_s":0.2}
{"type":"counter","name":"supervisor/degraded","total":1,"rate_per_s":0.1}
"#;
        let findings = doctor(&parse_run(text).unwrap());
        assert_eq!(findings.len(), 3, "{findings:?}");
        assert!(findings.iter().all(|f| f.severity == Severity::Warning), "{findings:?}");
        assert!(findings.iter().any(|f| f.message.contains("actor/panicked = 1")));
        assert!(findings.iter().any(|f| f.message.contains("actor/respawned = 2")));
        assert!(findings.iter().any(|f| f.message.contains("supervisor/degraded = 1")));

        let lost = r#"
{"type":"meta","run":"lost","elapsed_s":9}
{"type":"counter","name":"supervisor/fleet_lost","total":1,"rate_per_s":0.1}
{"type":"counter","name":"supervisor/emergency_saved","total":1,"rate_per_s":0.1}
"#;
        let findings = doctor(&parse_run(lost).unwrap());
        let crit = findings
            .iter()
            .find(|f| f.severity == Severity::Critical)
            .expect("fleet loss must be critical");
        assert!(crit.message.contains("supervisor/fleet_lost = 1"), "{crit:?}");
        assert!(crit.message.contains("--resume"), "{crit:?}");

        let unsaved = r#"
{"type":"meta","run":"lost-unsaved","elapsed_s":9}
{"type":"counter","name":"supervisor/fleet_lost","total":1,"rate_per_s":0.1}
"#;
        let findings = doctor(&parse_run(unsaved).unwrap());
        let crit = findings
            .iter()
            .find(|f| f.severity == Severity::Critical)
            .expect("fleet loss must be critical");
        assert!(crit.message.contains("no boundary-clean state"), "{crit:?}");
    }

    #[test]
    fn render_top_banners_respawns_and_degraded_fleet() {
        let text = r#"
{"type":"meta","run":"chaos","elapsed_s":9}
{"type":"counter","name":"actor/respawned","total":2,"rate_per_s":0.2}
{"type":"counter","name":"supervisor/degraded","total":1,"rate_per_s":0.1}
"#;
        let frame = render_top(&parse_run(text).unwrap());
        assert!(frame.contains("2 actor respawn(s)"), "{frame}");
        assert!(frame.contains("1 retired actor slot(s)"), "{frame}");
    }

    #[test]
    fn queue_depth_report_lists_max_per_actor() {
        let report = queue_depth_report(&parse_run(LIVE).unwrap());
        assert!(report.contains("actor0"), "{report}");
        assert!(report.contains("max depth    8"), "{report}");
        // No live data -> empty report, not noise.
        assert!(queue_depth_report(&parse_run(BASE).unwrap()).is_empty());
    }

    #[test]
    fn render_top_shows_actors_queues_and_latency() {
        let frame = render_top(&parse_run(LIVE).unwrap());
        for needle in [
            "hero-top",
            "env_steps/s 500.0",
            "1/2 busy",
            "aggregate queue depth 3",
            "actor0",
            "actor1",
            "wave dispatch->complete",
            "p95      3000us",
        ] {
            assert!(frame.contains(needle), "missing {needle:?} in:\n{frame}");
        }
        // Heartbeat renders as an age, not the raw gauge.
        assert!(frame.contains("0.2s ago"), "{frame}");
    }

    #[test]
    fn render_top_degrades_without_live_telemetry() {
        let frame = render_top(&parse_run(BASE).unwrap());
        assert!(frame.contains("no live rollout telemetry"), "{frame}");
    }

    #[test]
    fn doctor_ignores_healthy_checkpoint_bookkeeping() {
        let text = r#"
{"type":"meta","run":"ok","elapsed_s":9}
{"type":"counter","name":"checkpoint/saved","total":10,"rate_per_s":1}
{"type":"counter","name":"checkpoint/loaded","total":1,"rate_per_s":0.1}
{"type":"counter","name":"checkpoint/dropped","total":0,"rate_per_s":0}
"#;
        let findings = doctor(&parse_run(text).unwrap());
        assert!(findings.is_empty(), "{findings:?}");
    }
}

//! `hero-inspect` — terminal analyzer for telemetry dumps.
//!
//! ```text
//! hero-inspect summarize RUN
//! hero-inspect diff BASELINE CANDIDATE [--tol-value F] [--tol-count F]
//!                  [--tol-counter F] [--abs-floor F] [--ignore PREFIX]...
//!                  [--fail-on-regression] [--verbose]
//! hero-inspect doctor RUN
//! hero-inspect watch URL|RUN [--interval-ms N] [--frames N]
//! ```
//!
//! `RUN` is a `telemetry.jsonl` file or a directory containing one.
//! `diff --fail-on-regression` exits 1 when any compared quantity leaves
//! tolerance or a metric disappears; `--ignore PREFIX` (repeatable)
//! excludes metrics by name prefix, e.g. `--ignore checkpoint/` (resumed
//! vs. uninterrupted) or `--ignore live/` (scraped vs. unscraped). `doctor`
//! exits 1 when a critical pathology (watchdog events, dropped
//! checkpoints) is found. `watch` is "hero-top": it renders a refreshing
//! terminal view of a run from either a live exporter address (anything
//! that is not an existing path — e.g. `127.0.0.1:9464`, scraped via
//! `GET /snapshot`) or a finished telemetry file/directory; `--frames N`
//! stops after N frames (0 = forever, the default), `--interval-ms`
//! defaults to 1000. Usage errors exit 2.

use std::path::Path;
use std::process::ExitCode;

use hero_inspect::{
    diff_with, doctor, load_run, parse_run, queue_depth_report, render_findings, render_top,
    summarize, throughput_report, Severity, Tolerances,
};

const USAGE: &str = "usage: hero-inspect <summarize RUN | diff BASELINE CANDIDATE \
                     [--tol-value F] [--tol-count F] [--tol-counter F] [--abs-floor F] \
                     [--ignore PREFIX]... [--fail-on-regression] [--verbose] | doctor RUN \
                     | watch URL|RUN [--interval-ms N] [--frames N]>";

fn fail(msg: &str) -> ExitCode {
    eprintln!("hero-inspect: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return fail("missing subcommand");
    };
    match cmd.as_str() {
        "summarize" => {
            let [run] = rest else { return fail("summarize takes exactly one RUN") };
            match load_run(Path::new(run)) {
                Ok(run) => {
                    print!("{}", summarize(&run));
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&e),
            }
        }
        "diff" => run_diff(rest),
        "doctor" => {
            let [run] = rest else { return fail("doctor takes exactly one RUN") };
            match load_run(Path::new(run)) {
                Ok(run) => {
                    print!("{}", throughput_report(&run));
                    print!("{}", queue_depth_report(&run));
                    let findings = doctor(&run);
                    print!("{}", render_findings(&findings));
                    if findings.iter().any(|f| f.severity == Severity::Critical) {
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => fail(&e),
            }
        }
        "watch" => run_watch(rest),
        other => fail(&format!("unknown subcommand {other:?}")),
    }
}

fn run_watch(rest: &[String]) -> ExitCode {
    let mut source: Option<String> = None;
    let mut interval = std::time::Duration::from_millis(1000);
    let mut frames = 0u64; // 0 = forever
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--interval-ms" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(ms)) if ms > 0 => interval = std::time::Duration::from_millis(ms),
                _ => return fail("--interval-ms requires a positive integer"),
            },
            "--frames" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) => frames = n,
                _ => return fail("--frames requires a non-negative integer"),
            },
            other if other.starts_with('-') => return fail(&format!("unknown flag {other:?}")),
            other if source.is_none() => source = Some(other.to_owned()),
            _ => return fail("watch takes exactly one URL or RUN"),
        }
    }
    let Some(source) = source else { return fail("watch takes exactly one URL or RUN") };
    // An existing path is a finished run; anything else is a live
    // exporter address to scrape.
    let from_disk = Path::new(&source).exists();
    let mut rendered = 0u64;
    loop {
        let run = if from_disk {
            load_run(Path::new(&source))
        } else {
            hero_telemetry::exporter::http_get(&source)
                .map_err(|e| format!("scrape {source}: {e}"))
                .and_then(|body| parse_run(&body).map_err(|e| format!("{source}: {e}")))
        };
        let run = match run {
            Ok(run) => run,
            Err(e) => return fail(&e),
        };
        if rendered > 0 || frames != 1 {
            // Home + clear so the view refreshes in place; a single-frame
            // render (tests, piping) stays plain text.
            print!("\x1b[H\x1b[2J");
        }
        print!("{}", render_top(&run));
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        rendered += 1;
        if frames != 0 && rendered >= frames {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(interval);
    }
}

fn run_diff(rest: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut tol = Tolerances::default();
    let mut ignore_prefixes: Vec<String> = Vec::new();
    let mut fail_on_regression = false;
    let mut verbose = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut tol_flag = |slot: &mut f64| match it.next().map(|v| v.parse::<f64>()) {
            Some(Ok(v)) if v >= 0.0 => {
                *slot = v;
                Ok(())
            }
            _ => Err(format!("{arg} requires a non-negative number")),
        };
        let parsed = match arg.as_str() {
            "--tol-value" => tol_flag(&mut tol.value),
            "--tol-count" => tol_flag(&mut tol.count),
            "--tol-counter" => tol_flag(&mut tol.counter),
            "--abs-floor" => tol_flag(&mut tol.abs_floor),
            "--ignore" => match it.next() {
                Some(prefix) if !prefix.is_empty() => {
                    ignore_prefixes.push(prefix.clone());
                    Ok(())
                }
                _ => Err("--ignore requires a non-empty metric-name prefix".into()),
            },
            "--fail-on-regression" => {
                fail_on_regression = true;
                Ok(())
            }
            "--verbose" => {
                verbose = true;
                Ok(())
            }
            other if other.starts_with('-') => Err(format!("unknown flag {other:?}")),
            other => {
                paths.push(other.to_owned());
                Ok(())
            }
        };
        if let Err(e) = parsed {
            return fail(&e);
        }
    }
    let [baseline, candidate] = paths.as_slice() else {
        return fail("diff takes exactly BASELINE and CANDIDATE");
    };
    let (a, b) = match (load_run(Path::new(baseline)), load_run(Path::new(candidate))) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    let report = diff_with(&a, &b, &tol, &ignore_prefixes);
    print!("{}", report.render(verbose));
    if fail_on_regression && report.is_regression() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! `hero-inspect` — terminal analyzer for telemetry dumps.
//!
//! ```text
//! hero-inspect summarize RUN
//! hero-inspect diff BASELINE CANDIDATE [--tol-value F] [--tol-count F]
//!                  [--tol-counter F] [--abs-floor F]
//!                  [--rtol F] [--atol F] [--rtol-prefix P:F]...
//!                  [--atol-prefix P:F]... [--ignore PREFIX]...
//!                  [--fail-on-regression] [--verbose]
//! hero-inspect doctor RUN
//! hero-inspect watch URL|RUN [--interval-ms N] [--frames N]
//! ```
//!
//! `RUN` is a `telemetry.jsonl` file or a directory containing one.
//! `diff --fail-on-regression` exits 1 when any compared quantity leaves
//! tolerance or a metric disappears; `--ignore PREFIX` (repeatable)
//! excludes metrics by name prefix, e.g. `--ignore checkpoint/` (resumed
//! vs. uninterrupted) or `--ignore live/` (scraped vs. unscraped).
//! Passing any of `--rtol`, `--atol`, `--rtol-prefix`, `--atol-prefix`
//! switches the diff into tolerance mode (`|b-a| <= atol + rtol*scale`,
//! used to gate fast-math runs against their golden); the prefix forms
//! override the base pair for qualified quantity names (longest prefix
//! wins), e.g. `--rtol-prefix counter/:0` pins event counts exact.
//! Tolerance mode and the legacy `--tol-*`/`--abs-floor` family are
//! mutually exclusive. `doctor` exits 1 when a critical pathology
//! (watchdog events, dropped checkpoints) is found, and reports recorded
//! matmul GFLOP/s when a `BENCH_train_throughput.json` sits next to the
//! run (or in the current directory), plus serving throughput and tail
//! latency when a `BENCH_serve_latency.json` is found the same way
//! (warning when batch occupancy shows micro-batching never engaged).
//! `watch` is "hero-top": it renders a refreshing
//! terminal view of a run from either a live exporter address (anything
//! that is not an existing path — e.g. `127.0.0.1:9464`, scraped via
//! `GET /snapshot`) or a finished telemetry file/directory; `--frames N`
//! stops after N frames (0 = forever, the default), `--interval-ms`
//! defaults to 1000. Usage errors exit 2.

use std::path::Path;
use std::process::ExitCode;

use hero_inspect::{
    bench_report, diff_tolerance, diff_with, doctor, load_run, parse_run, queue_depth_report,
    render_findings, render_top, serve_report, summarize, throughput_report, PrefixTolerance,
    Severity, Tolerances,
};

const USAGE: &str = "usage: hero-inspect <summarize RUN | diff BASELINE CANDIDATE \
                     [--tol-value F] [--tol-count F] [--tol-counter F] [--abs-floor F] \
                     [--rtol F] [--atol F] [--rtol-prefix P:F]... [--atol-prefix P:F]... \
                     [--ignore PREFIX]... [--fail-on-regression] [--verbose] | doctor RUN \
                     | watch URL|RUN [--interval-ms N] [--frames N]>";

fn fail(msg: &str) -> ExitCode {
    eprintln!("hero-inspect: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return fail("missing subcommand");
    };
    match cmd.as_str() {
        "summarize" => {
            let [run] = rest else { return fail("summarize takes exactly one RUN") };
            match load_run(Path::new(run)) {
                Ok(run) => {
                    print!("{}", summarize(&run));
                    ExitCode::SUCCESS
                }
                Err(e) => fail(&e),
            }
        }
        "diff" => run_diff(rest),
        "doctor" => {
            let [run] = rest else { return fail("doctor takes exactly one RUN") };
            match load_run(Path::new(run)) {
                Ok(loaded) => {
                    print!("{}", throughput_report(&loaded));
                    print!("{}", bench_report(Path::new(run)));
                    let (serve_text, serve_findings) = serve_report(Path::new(run));
                    print!("{serve_text}");
                    print!("{}", queue_depth_report(&loaded));
                    let mut findings = doctor(&loaded);
                    findings.extend(serve_findings);
                    print!("{}", render_findings(&findings));
                    if findings.iter().any(|f| f.severity == Severity::Critical) {
                        ExitCode::FAILURE
                    } else {
                        ExitCode::SUCCESS
                    }
                }
                Err(e) => fail(&e),
            }
        }
        "watch" => run_watch(rest),
        other => fail(&format!("unknown subcommand {other:?}")),
    }
}

fn run_watch(rest: &[String]) -> ExitCode {
    let mut source: Option<String> = None;
    let mut interval = std::time::Duration::from_millis(1000);
    let mut frames = 0u64; // 0 = forever
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--interval-ms" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(ms)) if ms > 0 => interval = std::time::Duration::from_millis(ms),
                _ => return fail("--interval-ms requires a positive integer"),
            },
            "--frames" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) => frames = n,
                _ => return fail("--frames requires a non-negative integer"),
            },
            other if other.starts_with('-') => return fail(&format!("unknown flag {other:?}")),
            other if source.is_none() => source = Some(other.to_owned()),
            _ => return fail("watch takes exactly one URL or RUN"),
        }
    }
    let Some(source) = source else { return fail("watch takes exactly one URL or RUN") };
    // An existing path is a finished run; anything else is a live
    // exporter address to scrape.
    let from_disk = Path::new(&source).exists();
    let mut rendered = 0u64;
    loop {
        let run = if from_disk {
            load_run(Path::new(&source))
        } else {
            hero_telemetry::exporter::http_get(&source)
                .map_err(|e| format!("scrape {source}: {e}"))
                .and_then(|body| parse_run(&body).map_err(|e| format!("{source}: {e}")))
        };
        let run = match run {
            Ok(run) => run,
            Err(e) => return fail(&e),
        };
        if rendered > 0 || frames != 1 {
            // Home + clear so the view refreshes in place; a single-frame
            // render (tests, piping) stays plain text.
            print!("\x1b[H\x1b[2J");
        }
        print!("{}", render_top(&run));
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        rendered += 1;
        if frames != 0 && rendered >= frames {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(interval);
    }
}

/// Parses a `--rtol-prefix`/`--atol-prefix` operand of the form
/// `PREFIX:F` into an override on `overrides` (merging with an existing
/// entry for the same prefix, so both knobs can target one prefix).
fn parse_prefix_override(
    flag: &str,
    operand: Option<&String>,
    overrides: &mut Vec<PrefixTolerance>,
) -> Result<(), String> {
    let bad = || format!("{flag} requires PREFIX:F with F a non-negative number");
    let Some((prefix, value)) = operand.and_then(|v| v.rsplit_once(':')) else {
        return Err(bad());
    };
    let value: f64 = value.parse().map_err(|_| bad())?;
    if prefix.is_empty() || !(value >= 0.0) {
        return Err(bad());
    }
    let entry = match overrides.iter_mut().find(|o| o.prefix == prefix) {
        Some(entry) => entry,
        None => {
            overrides.push(PrefixTolerance { prefix: prefix.to_owned(), ..Default::default() });
            overrides.last_mut().expect("just pushed")
        }
    };
    match flag {
        "--rtol-prefix" => entry.rtol = Some(value),
        _ => entry.atol = Some(value),
    }
    Ok(())
}

fn run_diff(rest: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut tol = Tolerances::default();
    let mut rtol: Option<f64> = None;
    let mut atol: Option<f64> = None;
    let mut overrides: Vec<PrefixTolerance> = Vec::new();
    let mut ignore_prefixes: Vec<String> = Vec::new();
    let mut fail_on_regression = false;
    let mut verbose = false;
    let mut legacy_flags = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let mut tol_flag = |slot: &mut f64| match it.next().map(|v| v.parse::<f64>()) {
            Some(Ok(v)) if v >= 0.0 => {
                *slot = v;
                Ok(())
            }
            _ => Err(format!("{arg} requires a non-negative number")),
        };
        let parsed = match arg.as_str() {
            "--tol-value" => {
                legacy_flags = true;
                tol_flag(&mut tol.value)
            }
            "--tol-count" => {
                legacy_flags = true;
                tol_flag(&mut tol.count)
            }
            "--tol-counter" => {
                legacy_flags = true;
                tol_flag(&mut tol.counter)
            }
            "--abs-floor" => {
                legacy_flags = true;
                tol_flag(&mut tol.abs_floor)
            }
            "--rtol" => {
                let mut v = 0.0;
                tol_flag(&mut v).map(|()| rtol = Some(v))
            }
            "--atol" => {
                let mut v = 0.0;
                tol_flag(&mut v).map(|()| atol = Some(v))
            }
            "--rtol-prefix" | "--atol-prefix" => {
                parse_prefix_override(arg, it.next(), &mut overrides)
            }
            "--ignore" => match it.next() {
                Some(prefix) if !prefix.is_empty() => {
                    ignore_prefixes.push(prefix.clone());
                    Ok(())
                }
                _ => Err("--ignore requires a non-empty metric-name prefix".into()),
            },
            "--fail-on-regression" => {
                fail_on_regression = true;
                Ok(())
            }
            "--verbose" => {
                verbose = true;
                Ok(())
            }
            other if other.starts_with('-') => Err(format!("unknown flag {other:?}")),
            other => {
                paths.push(other.to_owned());
                Ok(())
            }
        };
        if let Err(e) = parsed {
            return fail(&e);
        }
    }
    let [baseline, candidate] = paths.as_slice() else {
        return fail("diff takes exactly BASELINE and CANDIDATE");
    };
    let tolerance_mode = rtol.is_some() || atol.is_some() || !overrides.is_empty();
    if tolerance_mode && legacy_flags {
        return fail("--rtol/--atol/--*-prefix and --tol-*/--abs-floor are separate modes; pick one");
    }
    let (a, b) = match (load_run(Path::new(baseline)), load_run(Path::new(candidate))) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    let report = if tolerance_mode {
        diff_tolerance(&a, &b, rtol.unwrap_or(0.0), atol.unwrap_or(0.0), &overrides, &ignore_prefixes)
    } else {
        diff_with(&a, &b, &tol, &ignore_prefixes)
    };
    print!("{}", report.render(verbose));
    if fail_on_regression && report.is_regression() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! End-to-end coverage of the `hero-inspect watch` subcommand: the built
//! binary renders a hero-top frame from a live exporter URL and from a
//! finished telemetry directory, and rejects usage errors with exit 2.

use std::process::Command;
use std::sync::Arc;

const FIXTURE: &str = r#"{"type":"meta","run":"cli-fixture","elapsed_s":4.2}
{"type":"counter","name":"env_steps","total":840,"rate_per_s":200.0}
{"type":"gauge","name":"live/actors_total","value":2}
{"type":"gauge","name":"live/actors_busy","value":2}
{"type":"gauge","name":"live/queue_depth_total","value":1}
{"type":"gauge","name":"live/queue_depth_now/actor0","value":1}
{"type":"live","name":"live/wave_us","count":10,"mean":1000,"min":500,"max":2000,"p50":900,"p95":1800,"p99":2000}
"#;

fn watch(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_hero-inspect"))
        .arg("watch")
        .args(args)
        .output()
        .expect("run hero-inspect")
}

#[test]
fn watch_renders_one_frame_from_a_finished_dir() {
    let dir = std::env::temp_dir().join(format!("hero_watch_cli_dir_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("telemetry.jsonl"), FIXTURE).unwrap();

    let out = watch(&[dir.to_str().unwrap(), "--frames", "1"]);
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in ["hero-top", "cli-fixture", "2/2 busy", "wave dispatch->complete"] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn watch_scrapes_a_live_exporter_url() {
    let registry = Arc::new(hero_telemetry::Registry::new(hero_telemetry::TelemetryConfig {
        run_label: "cli-live".into(),
        ..hero_telemetry::TelemetryConfig::default()
    }));
    registry.counter_add("env_steps", 42);
    registry.gauge_set("live/actors_total", 2.0);
    registry.gauge_set("live/actors_busy", 1.0);
    let exporter =
        hero_telemetry::exporter::serve(registry, "127.0.0.1:0").expect("bind exporter");
    let addr = exporter.local_addr().to_string();

    // Two frames at a fast interval: exercises the refresh loop, not
    // just a single scrape.
    let out = watch(&[&addr, "--frames", "2", "--interval-ms", "10"]);
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in ["hero-top", "cli-live", "1/2 busy"] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn watch_usage_errors_exit_2() {
    for args in [&[][..], &["--frames", "-1", "somewhere"][..], &["a", "b"][..]] {
        let out = watch(args);
        assert_eq!(out.status.code(), Some(2), "args {args:?}: {out:?}");
    }
}

#[test]
fn watch_unreachable_url_fails_cleanly() {
    // A port nothing listens on: bind-then-drop guarantees it's free.
    let addr = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let out = watch(&[&addr, "--frames", "1"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("scrape"), "{err}");
}

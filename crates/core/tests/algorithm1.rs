//! Integration tests of the Algorithm-1 mechanics: option segments flow
//! into the high-level buffer, the opponent model ingests every step and
//! its loss falls, and the ε schedule anneals.

use std::sync::Arc;

use hero_baselines::sac::SacConfig;
use hero_core::config::HeroConfig;
use hero_core::skills::SkillLibrary;
use hero_core::trainer::{train_team, HeroTeam, TrainOptions};
use hero_rl::schedule::Schedule;
use hero_sim::env::EnvConfig;
use hero_sim::scenario;

fn env_cfg() -> EnvConfig {
    EnvConfig {
        max_steps: 10,
        ..EnvConfig::default()
    }
}

fn small_team(cfg: HeroConfig, seed: u64) -> HeroTeam {
    let skills = Arc::new(SkillLibrary::untrained(
        env_cfg(),
        SacConfig {
            hidden: 8,
            ..SacConfig::default()
        },
        seed,
    ));
    HeroTeam::new(2, env_cfg().high_dim(), skills, cfg, seed)
}

#[test]
fn option_segments_accumulate_into_high_level_buffers() {
    let cfg = HeroConfig {
        hidden: 8,
        batch_size: 8,
        warmup: 8,
        ..HeroConfig::default()
    };
    let mut team = small_team(cfg, 3);
    let mut env = scenario::two_vehicle_merge(env_cfg(), 3);
    let _ = train_team(
        &mut team,
        &mut env,
        &TrainOptions {
            episodes: 10,
            update_every: 4,
            seed: 3,
        },
    );
    for agent in team.agents() {
        // With 10-step episodes and 3-step in-lane options, each agent
        // closes at least ~2 segments per episode.
        assert!(
            agent.buffer_len() >= 10,
            "expected ≥10 segments, got {}",
            agent.buffer_len()
        );
        // Every environment step feeds the opponent model.
        assert!(agent.opponent_model().buffer_len() >= 50);
    }
}

#[test]
fn opponent_loss_trace_decreases_over_training() {
    let cfg = HeroConfig {
        hidden: 16,
        batch_size: 32,
        warmup: 32,
        ..HeroConfig::default()
    };
    let mut team = small_team(cfg, 5);
    let mut env = scenario::two_vehicle_merge(env_cfg(), 5);
    let _ = train_team(
        &mut team,
        &mut env,
        &TrainOptions {
            episodes: 120,
            update_every: 2,
            seed: 5,
        },
    );
    let traces = team.agents()[0].opponent_loss_traces();
    assert_eq!(traces.len(), 1, "one opponent for a two-learner team");
    let t = &traces[0];
    assert!(t.len() > 20, "opponent updates must have run ({})", t.len());
    let early: f32 = t[..10].iter().sum::<f32>() / 10.0;
    let late: f32 = t[t.len() - 10..].iter().sum::<f32>() / 10.0;
    assert!(
        late < early,
        "opponent NLL should fall: {early:.3} -> {late:.3}"
    );
}

#[test]
fn evaluation_leaves_training_buffers_untouched() {
    let cfg = HeroConfig {
        hidden: 8,
        batch_size: 8,
        warmup: 8,
        ..HeroConfig::default()
    };
    let mut team = small_team(cfg, 11);
    let mut env = scenario::two_vehicle_merge(env_cfg(), 11);
    let _ = train_team(
        &mut team,
        &mut env,
        &TrainOptions {
            episodes: 5,
            update_every: 4,
            seed: 11,
        },
    );
    let before: Vec<usize> = team.agents().iter().map(|a| a.buffer_len()).collect();
    let before_opp: Vec<usize> = team
        .agents()
        .iter()
        .map(|a| a.opponent_model().buffer_len())
        .collect();
    let _ = hero_core::trainer::evaluate_team(&mut team, &mut env, 4, 12);
    let after: Vec<usize> = team.agents().iter().map(|a| a.buffer_len()).collect();
    let after_opp: Vec<usize> = team
        .agents()
        .iter()
        .map(|a| a.opponent_model().buffer_len())
        .collect();
    assert_eq!(before, after, "evaluation must not store option segments");
    assert_eq!(before_opp, after_opp, "evaluation must not feed the opponent model");
}

#[test]
fn exploration_schedule_is_honored() {
    // With ε pinned at 1.0 every selection is uniform; with ε = 0 and a
    // deterministic softmax the same seeds give identical curves — the
    // schedule must therefore change behavior between the two.
    let run = |eps: f32| {
        let cfg = HeroConfig {
            hidden: 8,
            batch_size: 8,
            warmup: 8,
            exploration: Schedule::Constant(eps),
            ..HeroConfig::default()
        };
        let mut team = small_team(cfg, 7);
        let mut env = scenario::two_vehicle_merge(env_cfg(), 7);
        let rec = train_team(
            &mut team,
            &mut env,
            &TrainOptions {
                episodes: 6,
                update_every: 100, // effectively no learning
                seed: 7,
            },
        );
        rec.series("reward").unwrap().to_vec()
    };
    assert_ne!(run(1.0), run(0.0), "ε must influence the rollouts");
}

//! Serving-path equivalence: the pooled, graph-free batch inference used
//! by `hero-serve` must match the tape-recording path bit-for-bit under
//! strict kernels (DESIGN.md "Serving"), both against
//! [`HeroAgent::batch_logits`] and across batch sizes.

use hero_autograd::TensorPool;
use hero_core::{HeroAgent, HeroConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn agent(seed: u64) -> HeroAgent {
    let mut rng = StdRng::seed_from_u64(seed);
    HeroAgent::new(10, 2, HeroConfig::default(), &mut rng)
}

fn obs_rows(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect()
}

#[test]
fn pooled_batch_logits_match_graph_path_bitwise() {
    let agent = agent(3);
    let rows = obs_rows(11, 10, 4);
    let refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
    let via_graph = agent.batch_logits(&refs);
    let mut pool = TensorPool::new();
    let pooled = agent.batch_logits_in(&refs, &mut pool);
    assert_eq!(via_graph.len(), pooled.len());
    for (r, (a, b)) in via_graph.iter().zip(&pooled).enumerate() {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "row {r} diverged from the graph path");
        }
    }
}

#[test]
fn pooled_batch_rows_match_single_row_calls_bitwise() {
    let agent = agent(5);
    let rows = obs_rows(9, 10, 6);
    let refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
    let mut pool = TensorPool::new();
    let batched = agent.batch_logits_in(&refs, &mut pool);
    for (r, row) in rows.iter().enumerate() {
        let single = agent.batch_logits_in(&[row.as_slice()], &mut pool);
        for (x, y) in batched[r].iter().zip(&single[0]) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "batched row {r} diverged from its single-row forward"
            );
        }
    }
}

//! Checkpoint kernel-mode refusal: a checkpoint written under one GEMM
//! tier must not resume under the other (DESIGN.md "Performance →
//! Fast-math tier"). A cross-mode resume would diverge from both golden
//! baselines while looking perfectly healthy, and falling back to a
//! fresh run would silently discard the checkpointed progress — so the
//! trainer fails loudly with a typed [`CheckpointError`].

use std::sync::{Arc, Mutex};

use hero_autograd::{CheckpointError, KernelMode};
use hero_baselines::sac::SacConfig;
use hero_core::checkpoint::{CheckpointStore, TrainerSnapshot};
use hero_core::trainer::{train_team_checkpointed, CheckpointConfig, HeroTeam, TrainOptions};
use hero_core::{HeroConfig, SkillLibrary};
use hero_faultplan::FaultPlan;
use hero_rl::metrics::Recorder;
use hero_sim::env::EnvConfig;
use hero_sim::scenario;

/// Serializes tests that read or flip the process-global kernel mode.
static MODE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    MODE_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn snapshot(kernel_mode: KernelMode) -> TrainerSnapshot {
    TrainerSnapshot {
        next_episode: 2,
        step_counter: 16,
        update_counter: 16,
        trainer_rng: [1, 2, 3, 4],
        env_rng: vec![5, 6, 7, 8],
        recorder: Recorder::new(),
        telemetry: None,
        workers: None,
        kernel_mode,
        team_sections: Vec::new(),
    }
}

#[test]
fn kernel_mode_roundtrips_through_sections() {
    for mode in [KernelMode::Strict, KernelMode::Fast] {
        let back = TrainerSnapshot::from_sections(&snapshot(mode).to_sections()).unwrap();
        assert_eq!(back.kernel_mode, mode);
    }
}

#[test]
fn missing_kernel_mode_section_means_strict() {
    // Checkpoints written before the fast-math tier carry no section;
    // strict was the only mode that existed.
    let sections: Vec<_> = snapshot(KernelMode::Fast)
        .to_sections()
        .into_iter()
        .filter(|(name, _)| name != "kernel_mode")
        .collect();
    let back = TrainerSnapshot::from_sections(&sections).unwrap();
    assert_eq!(back.kernel_mode, KernelMode::Strict);
}

#[test]
fn unknown_mode_byte_is_malformed() {
    let mut sections = snapshot(KernelMode::Strict).to_sections();
    for (name, bytes) in &mut sections {
        if name == "kernel_mode" {
            bytes[0] = 9;
        }
    }
    let err = TrainerSnapshot::from_sections(&sections).unwrap_err();
    assert!(
        matches!(&err, CheckpointError::Malformed(what) if what.contains("kernel_mode")),
        "{err}"
    );
}

#[test]
fn verify_refuses_cross_mode_and_accepts_matching() {
    let _guard = lock();
    // The active mode in an untouched process is strict.
    assert_eq!(hero_autograd::kernel_mode(), KernelMode::Strict);
    snapshot(KernelMode::Strict).verify_kernel_mode().unwrap();
    let err = snapshot(KernelMode::Fast).verify_kernel_mode().unwrap_err();
    match &err {
        CheckpointError::KernelModeMismatch { saved, active } => {
            assert_eq!(saved, "fast");
            assert_eq!(active, "strict");
        }
        other => panic!("expected KernelModeMismatch, got {other}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("fast") && msg.contains("strict"), "{msg}");
}

/// Runs a tiny resuming training job against `dir` and returns the
/// typed refusal's message, if any. A cross-mode resume surfaces as
/// [`hero_core::trainer::TrainError::ResumeRefused`] — no panic, so
/// binaries can exit nonzero with the message instead of a backtrace.
fn resume_outcome(dir: &std::path::Path) -> Result<(), String> {
    let env_cfg = EnvConfig {
        max_steps: 4,
        ..EnvConfig::default()
    };
    let skills = Arc::new(SkillLibrary::untrained(
        env_cfg,
        SacConfig {
            hidden: 8,
            ..SacConfig::default()
        },
        0,
    ));
    let cfg = HeroConfig {
        hidden: 8,
        batch_size: 8,
        warmup: 8,
        ..HeroConfig::default()
    };
    let mut team = HeroTeam::new(2, env_cfg.high_dim(), skills, cfg, 1);
    let mut env = scenario::two_vehicle_merge(env_cfg, 3);
    train_team_checkpointed(
        &mut team,
        &mut env,
        &TrainOptions {
            episodes: 3,
            update_every: 4,
            seed: 7,
        },
        &CheckpointConfig {
            dir: Some(dir.to_path_buf()),
            resume: true,
            ..CheckpointConfig::default()
        },
    )
    .map(|_| ())
    .map_err(|e| e.to_string())
}

fn store_snapshot(tag: &str, mode: KernelMode) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hero-modeckpt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = CheckpointStore::open(&dir, 2).unwrap();
    assert!(store.save(&snapshot(mode).to_sections(), &FaultPlan::none()));
    dir
}

#[test]
fn strict_run_refuses_fast_checkpoint() {
    let _guard = lock();
    let dir = store_snapshot("fast-under-strict", KernelMode::Fast);
    let msg = resume_outcome(&dir).expect_err("resume must refuse on mode mismatch");
    assert!(
        msg.contains("refusing to resume") && msg.contains("kernel mode"),
        "refusal message should name the cause: {msg}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(feature = "fast-math")]
#[test]
fn fast_run_refuses_strict_checkpoint() {
    let _guard = lock();
    let dir = store_snapshot("strict-under-fast", KernelMode::Strict);
    hero_autograd::set_kernel_mode(KernelMode::Fast).unwrap();
    let outcome = resume_outcome(&dir);
    // Restore before asserting so a failure can't poison other tests.
    hero_autograd::set_kernel_mode(KernelMode::Strict).unwrap();
    let msg = outcome.expect_err("resume must refuse on mode mismatch");
    assert!(
        msg.contains("refusing to resume") && msg.contains("`strict`"),
        "refusal message should name the saved mode: {msg}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The matching direction still resumes: a strict checkpoint under a
/// strict runtime is accepted (the refusal is specific, not blanket).
#[test]
fn matching_mode_resumes_cleanly() {
    let _guard = lock();
    let dir = store_snapshot("strict-under-strict", KernelMode::Strict);
    resume_outcome(&dir).expect("matching-mode resume must succeed");
    let _ = std::fs::remove_dir_all(&dir);
}

//! The parallel-update determinism contract (DESIGN.md "Performance"):
//! running the per-agent update phase on scoped threads must be
//! *bit-identical* to the sequential path — same metric series, same
//! checkpoint bytes, same telemetry counter totals and value histograms.
//! Only span durations (wall clock) may differ.

use std::sync::Arc;

use hero_baselines::sac::SacConfig;
use hero_core::trainer::{train_team, HeroTeam, TrainOptions};
use hero_core::{HeroConfig, SkillLibrary};
use hero_rl::telemetry::{self, TelemetryConfig};
use hero_sim::env::EnvConfig;
use hero_sim::scenario;

fn team(env_cfg: EnvConfig, parallel: bool) -> HeroTeam {
    let skills = Arc::new(SkillLibrary::untrained(
        env_cfg,
        SacConfig {
            hidden: 8,
            ..SacConfig::default()
        },
        0,
    ));
    let cfg = HeroConfig {
        hidden: 8,
        batch_size: 8,
        warmup: 8,
        parallel_update: parallel,
        ..HeroConfig::default()
    };
    HeroTeam::new(2, env_cfg.high_dim(), skills, cfg, 1)
}

/// One seeded fig7-style run per mode; returns the team's checkpoint
/// sections, the recorded series, and the telemetry state.
fn run(parallel: bool) -> (
    Vec<(String, Vec<u8>)>,
    Vec<(String, Vec<f32>)>,
    telemetry::RegistryState,
) {
    let guard = telemetry::scoped(TelemetryConfig::default());
    let env_cfg = EnvConfig {
        max_steps: 8,
        ..EnvConfig::default()
    };
    let mut env = scenario::two_vehicle_merge(env_cfg, 3);
    let mut t = team(env_cfg, parallel);
    let rec = train_team(
        &mut t,
        &mut env,
        &TrainOptions {
            episodes: 5,
            update_every: 1,
            seed: 7,
        },
    );
    let series = rec
        .names()
        .into_iter()
        .map(|n| (n.to_string(), rec.series(n).unwrap().to_vec()))
        .collect();
    let state = telemetry::export_state().expect("scoped sink active");
    drop(guard);
    (t.save_state(), series, state)
}

#[test]
fn parallel_update_is_bit_identical_to_sequential() {
    let (seq_ckpt, seq_series, seq_tel) = run(false);
    let (par_ckpt, par_series, par_tel) = run(true);

    // Metric series: exact f32 equality, not tolerance.
    assert_eq!(
        seq_series.len(),
        par_series.len(),
        "series sets differ: seq={:?} par={:?}",
        seq_series.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        par_series.iter().map(|(n, _)| n).collect::<Vec<_>>()
    );
    for ((sn, sv), (pn, pv)) in seq_series.iter().zip(&par_series) {
        assert_eq!(sn, pn);
        let sb: Vec<u32> = sv.iter().map(|v| v.to_bits()).collect();
        let pb: Vec<u32> = pv.iter().map(|v| v.to_bits()).collect();
        assert_eq!(sb, pb, "series `{sn}` diverged: {sv:?} vs {pv:?}");
    }

    // Checkpoint bytes: every section byte-for-byte equal.
    assert_eq!(seq_ckpt.len(), par_ckpt.len());
    for ((sn, sb), (pn, pb)) in seq_ckpt.iter().zip(&par_ckpt) {
        assert_eq!(sn, pn, "checkpoint section order diverged");
        assert_eq!(sb, pb, "checkpoint section `{sn}` bytes diverged");
    }

    // Telemetry: counter totals and value histograms (counts, means,
    // extrema, reservoir contents) bit-identical. Span histograms hold
    // wall-clock durations and are exempt by design.
    assert_eq!(seq_tel.counters, par_tel.counters, "counter totals diverged");
    assert_eq!(
        seq_tel.values, par_tel.values,
        "value-histogram states diverged"
    );
    assert!(
        seq_tel.counters["grad_updates"] > 0,
        "run too short: no updates happened, the contract was not exercised"
    );
}

//! Crash-safe training checkpoints: the full-state [`TrainerSnapshot`]
//! and the rotating, atomic, fault-tolerant [`CheckpointStore`].
//!
//! Snapshots capture everything the cooperative training loop needs to
//! resume bit-identically: the team (networks, target networks, optimizer
//! moments, replay buffers, opponent models, bookkeeping), both RNG
//! streams (trainer and environment), the metric recorder, and the
//! telemetry registry. Files use the v2 sectioned checkpoint format of
//! [`hero_autograd::serialize`] (CRC-footed, written atomically).
//!
//! The store degrades gracefully: writes retry with backoff and then drop
//! (training never dies because a disk write failed), and loads fall back
//! past corrupted files to the newest checkpoint whose CRC validates.
//! Every outcome is surfaced as a `checkpoint/*` telemetry counter.

use std::path::{Path, PathBuf};
use std::time::Duration;

use hero_autograd::serialize;
use hero_autograd::{CheckpointError, KernelMode};
use hero_faultplan::FaultPlan;
use hero_rl::metrics::Recorder;
use hero_rl::snapshot::{self, Codec};
use hero_rl::telemetry;
use hero_rl::telemetry::RegistryState;

/// File-name prefix of checkpoint files inside the checkpoint directory.
pub const FILE_PREFIX: &str = "ckpt-";
/// File-name extension of checkpoint files.
pub const FILE_EXT: &str = ".hero";
/// Version tag of the snapshot layout inside the "meta" section.
const SNAPSHOT_VERSION: u32 = 1;
/// Default write attempts before a save degrades to a counted drop
/// (override per store with [`CheckpointStore::set_max_attempts`]).
pub const DEFAULT_SAVE_ATTEMPTS: usize = 3;
/// Default backoff base: retry `k` sleeps `DEFAULT_BACKOFF_BASE_MS << k`
/// milliseconds (override with [`CheckpointStore::set_backoff_base_ms`];
/// 0 disables sleeping, which is what tests use).
pub const DEFAULT_BACKOFF_BASE_MS: u64 = 1;

/// Per-world rollout state captured by the batched actor/learner loop:
/// every replica's environment RNG stream and joint last-options vector.
///
/// Serial-mode (single-world) runs leave this out entirely, so their
/// snapshots stay byte-identical to sequential `train_team` snapshots, and
/// older checkpoints without the section load unchanged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerStates {
    /// One environment RNG stream per world replica.
    pub rngs: Vec<Vec<u64>>,
    /// One joint last-options vector per world replica.
    pub last_options: Vec<Vec<usize>>,
}

/// Everything the training loop needs to resume exactly where it stopped.
///
/// Team state is carried as opaque sections (produced by
/// `HeroTeam::save_state`) so this type stays independent of network
/// architecture details.
#[derive(Clone, Debug)]
pub struct TrainerSnapshot {
    /// The episode index training should continue from.
    pub next_episode: usize,
    /// Environment steps taken so far (drives the `update_every` cadence).
    pub step_counter: usize,
    /// Learning passes attempted so far (drives fault-plan injection).
    pub update_counter: usize,
    /// The trainer's action-sampling RNG stream position.
    pub trainer_rng: [u64; 4],
    /// The environment's RNG stream position(s).
    pub env_rng: Vec<u64>,
    /// The per-episode metric series recorded so far.
    pub recorder: Recorder,
    /// The telemetry registry state, when telemetry was enabled at save
    /// time.
    pub telemetry: Option<RegistryState>,
    /// Per-world rollout state (batched actor/learner runs only).
    pub workers: Option<WorkerStates>,
    /// GEMM kernel mode active when the snapshot was taken. Resuming
    /// under a different mode is refused (see
    /// [`TrainerSnapshot::verify_kernel_mode`]): the restored network
    /// would immediately diverge from both the strict and the fast-math
    /// baseline, which no golden could catch.
    pub kernel_mode: KernelMode,
    /// Opaque team sections (`team/*`, `agent<k>/*`).
    pub team_sections: Vec<(String, Vec<u8>)>,
}

impl TrainerSnapshot {
    /// Serializes the snapshot into named checkpoint sections.
    pub fn to_sections(&self) -> Vec<(String, Vec<u8>)> {
        let mut meta = Vec::new();
        meta.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        meta.extend_from_slice(&(self.next_episode as u64).to_le_bytes());
        meta.extend_from_slice(&(self.step_counter as u64).to_le_bytes());
        meta.extend_from_slice(&(self.update_counter as u64).to_le_bytes());

        let mut rngs = Vec::new();
        self.trainer_rng.to_vec().encode(&mut rngs);
        self.env_rng.encode(&mut rngs);

        let mut sections = vec![
            ("meta".to_string(), meta),
            ("rngs".to_string(), rngs),
            (
                "recorder".to_string(),
                snapshot::encode_recorder(&self.recorder),
            ),
        ];
        if let Some(state) = &self.telemetry {
            sections.push(("telemetry".to_string(), state.to_bytes()));
        }
        if let Some(workers) = &self.workers {
            let mut blob = Vec::new();
            workers.rngs.encode(&mut blob);
            workers.last_options.encode(&mut blob);
            sections.push(("workers".to_string(), blob));
        }
        sections.push(("kernel_mode".to_string(), vec![self.kernel_mode.to_byte()]));
        sections.extend(self.team_sections.iter().cloned());
        sections
    }

    /// Parses a snapshot from checkpoint sections.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] when required sections are missing or
    /// malformed, or the snapshot version is unknown.
    pub fn from_sections(sections: &[(String, Vec<u8>)]) -> Result<Self, CheckpointError> {
        let malformed = |what: String| CheckpointError::Malformed(what);

        let meta = serialize::require_section(sections, "meta")?;
        if meta.len() != 4 + 8 * 3 {
            return Err(malformed(format!(
                "meta section has {} bytes, expected 28",
                meta.len()
            )));
        }
        let version = u32::from_le_bytes(meta[0..4].try_into().unwrap());
        if version != SNAPSHOT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let word = |i: usize| u64::from_le_bytes(meta[4 + 8 * i..12 + 8 * i].try_into().unwrap());

        let rngs_blob = serialize::require_section(sections, "rngs")?;
        let mut r = snapshot::Reader::new(rngs_blob);
        let mapped = |e: snapshot::SnapshotError| malformed(format!("rng section: {e}"));
        let trainer_words: Vec<u64> = decode_u64s(&mut r).map_err(mapped)?;
        let env_rng: Vec<u64> = decode_u64s(&mut r).map_err(mapped)?;
        r.finish().map_err(mapped)?;
        let trainer_rng: [u64; 4] = trainer_words
            .as_slice()
            .try_into()
            .map_err(|_| malformed("trainer rng must be 4 words".to_string()))?;

        let recorder =
            snapshot::decode_recorder(serialize::require_section(sections, "recorder")?)
                .map_err(|e| malformed(format!("recorder section: {e}")))?;

        let telemetry = match serialize::find_section(sections, "telemetry") {
            Some(bytes) => Some(
                RegistryState::from_bytes(bytes)
                    .map_err(|e| malformed(format!("telemetry section: {e}")))?,
            ),
            None => None,
        };

        let workers = match serialize::find_section(sections, "workers") {
            Some(bytes) => {
                let mut r = snapshot::Reader::new(bytes);
                let mapped =
                    |e: snapshot::SnapshotError| malformed(format!("workers section: {e}"));
                let rngs: Vec<Vec<u64>> = Codec::decode(&mut r).map_err(mapped)?;
                let last_options: Vec<Vec<usize>> = Codec::decode(&mut r).map_err(mapped)?;
                r.finish().map_err(mapped)?;
                if rngs.len() != last_options.len() {
                    return Err(malformed(format!(
                        "workers section: {} rng streams vs {} last-option vectors",
                        rngs.len(),
                        last_options.len()
                    )));
                }
                Some(WorkerStates { rngs, last_options })
            }
            None => None,
        };

        // Optional for backward compatibility: checkpoints written before
        // the fast-math tier carry no section and are strict by
        // definition (strict was the only mode that existed).
        let kernel_mode = match serialize::find_section(sections, "kernel_mode") {
            Some([byte]) => KernelMode::from_byte(*byte).ok_or_else(|| {
                malformed(format!("kernel_mode section has unknown mode byte {byte}"))
            })?,
            Some(bytes) => {
                return Err(malformed(format!(
                    "kernel_mode section has {} bytes, expected 1",
                    bytes.len()
                )))
            }
            None => KernelMode::Strict,
        };

        let team_sections: Vec<(String, Vec<u8>)> = sections
            .iter()
            .filter(|(name, _)| name.starts_with("team/") || name.starts_with("agent"))
            .cloned()
            .collect();

        Ok(Self {
            next_episode: word(0) as usize,
            step_counter: word(1) as usize,
            update_counter: word(2) as usize,
            trainer_rng,
            env_rng,
            recorder,
            telemetry,
            workers,
            kernel_mode,
            team_sections,
        })
    }

    /// Checks the snapshot's recorded kernel mode against the mode active
    /// in this process.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::KernelModeMismatch`] when they differ.
    /// Callers must treat this as fatal rather than falling back to a
    /// fresh run: a silent cross-mode resume diverges from every golden
    /// baseline while looking healthy.
    pub fn verify_kernel_mode(&self) -> Result<(), CheckpointError> {
        let active = hero_autograd::kernel_mode();
        if self.kernel_mode != active {
            return Err(CheckpointError::KernelModeMismatch {
                saved: self.kernel_mode.as_str().to_string(),
                active: active.as_str().to_string(),
            });
        }
        Ok(())
    }
}

fn decode_u64s(r: &mut snapshot::Reader<'_>) -> Result<Vec<u64>, snapshot::SnapshotError> {
    let n = r.len(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u64()?);
    }
    Ok(out)
}

/// The result of scanning a checkpoint directory for the newest loadable
/// checkpoint.
#[derive(Debug)]
pub struct LoadedCheckpoint {
    /// Index parsed from the file name (`ckpt-<index>.hero`).
    pub index: u64,
    /// The decoded sections.
    pub sections: Vec<(String, Vec<u8>)>,
    /// Newer checkpoint files that failed CRC/parse validation and were
    /// skipped.
    pub corrupt_skipped: usize,
}

/// A rotating checkpoint directory with atomic writes, retry-with-backoff
/// degrading to counted drops, and retention of the last `retain` good
/// files.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    retain: usize,
    next_index: u64,
    max_attempts: usize,
    backoff_base_ms: u64,
}

impl CheckpointStore {
    /// Opens (creating if needed) the checkpoint directory; numbering
    /// continues after any checkpoints already present.
    ///
    /// # Errors
    ///
    /// Returns the underlying IO error when the directory cannot be
    /// created or listed.
    pub fn open(dir: impl Into<PathBuf>, retain: usize) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let next_index = list_checkpoints(&dir)?
            .last()
            .map(|&(index, _)| index + 1)
            .unwrap_or(0);
        Ok(Self {
            dir,
            retain: retain.max(1),
            next_index,
            max_attempts: DEFAULT_SAVE_ATTEMPTS,
            backoff_base_ms: DEFAULT_BACKOFF_BASE_MS,
        })
    }

    /// Overrides the write attempts per save (`--checkpoint-retry N` gives
    /// `N` retries, i.e. `N + 1` attempts). Clamped to at least one.
    pub fn set_max_attempts(&mut self, attempts: usize) {
        self.max_attempts = attempts.max(1);
    }

    /// Overrides the retry backoff base: retry `k` sleeps `base << k`
    /// milliseconds. The schedule is fully deterministic (no jitter);
    /// `0` disables sleeping entirely, so tests pay no wall-clock cost.
    pub fn set_backoff_base_ms(&mut self, base_ms: u64) {
        self.backoff_base_ms = base_ms;
    }

    /// The directory checkpoints are written to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The index the next save will use.
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// Writes `sections` as the next checkpoint: atomically (temp + fsync
    /// + rename), retrying transient failures with backoff, and degrading
    /// to a counted drop so training continues even when the disk is sick.
    /// Old checkpoints beyond the retention count are pruned after a
    /// successful write.
    ///
    /// `plan` injects deterministic IO faults (and post-write corruption)
    /// for crash-safety tests; pass [`FaultPlan::none`] in production.
    ///
    /// Returns `true` when the checkpoint was durably written.
    pub fn save(&mut self, sections: &[(String, Vec<u8>)], plan: &FaultPlan) -> bool {
        let index = self.next_index;
        self.next_index += 1;
        let path = self.dir.join(format!("{FILE_PREFIX}{index:08}{FILE_EXT}"));
        telemetry::counter_add("checkpoint/attempts", 1);
        let write_t0 = (!telemetry::disabled()).then(std::time::Instant::now);
        for attempt in 0..self.max_attempts {
            let result = if plan.io_error_at(index as usize, attempt) {
                Err(CheckpointError::Io(std::io::Error::new(
                    std::io::ErrorKind::Other,
                    "injected io fault",
                )))
            } else {
                serialize::save_sections(&path, sections)
            };
            match result {
                Ok(()) => {
                    if let Some(mode) = plan.corrupt_after_save(index as usize) {
                        let _ = hero_faultplan::corrupt_file(&path, mode);
                    }
                    telemetry::counter_add("checkpoint/saved", 1);
                    if let Some(t0) = write_t0 {
                        telemetry::live_observe(
                            "live/checkpoint_write_us",
                            t0.elapsed().as_micros() as f64,
                        );
                        telemetry::flight_event(telemetry::FlightEventKind::CheckpointSaved {
                            index,
                        });
                    }
                    self.prune();
                    return true;
                }
                Err(_) => {
                    telemetry::counter_add("checkpoint/save_failed", 1);
                    if attempt + 1 < self.max_attempts {
                        telemetry::counter_add("checkpoint/retries", 1);
                        if self.backoff_base_ms > 0 {
                            // Deterministic exponential schedule, no jitter:
                            // retry k sleeps base << k ms (capped at ~4s so a
                            // large --checkpoint-retry cannot stall training
                            // for minutes).
                            let ms = self
                                .backoff_base_ms
                                .saturating_mul(1u64 << attempt.min(12))
                                .min(4096);
                            std::thread::sleep(Duration::from_millis(ms));
                        }
                    }
                }
            }
        }
        telemetry::counter_add("checkpoint/dropped", 1);
        false
    }

    fn prune(&self) {
        if let Ok(files) = list_checkpoints(&self.dir) {
            if files.len() > self.retain {
                for (_, path) in &files[..files.len() - self.retain] {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
    }
}

/// Scans `dir` newest-first for the most recent checkpoint whose CRC (and
/// section structure) validates, skipping corrupted files.
///
/// Deliberately emits **no** telemetry counters: the caller typically
/// restores the telemetry registry *from* the loaded snapshot, which would
/// wipe counters emitted here — it must count `checkpoint/loaded`,
/// `checkpoint/fallback`, and `checkpoint/corrupt_skipped` after that
/// restore (see `trainer::train_team_checkpointed`).
///
/// Returns `Ok(None)` when the directory has no loadable checkpoint.
///
/// # Errors
///
/// Returns the underlying IO error when the directory cannot be listed
/// (a missing directory yields `Ok(None)`).
pub fn load_latest(dir: &Path) -> Result<Option<LoadedCheckpoint>, CheckpointError> {
    if !dir.exists() {
        return Ok(None);
    }
    let files = list_checkpoints(dir)?;
    let mut corrupt_skipped = 0usize;
    for (index, path) in files.iter().rev() {
        match serialize::load_sections(path) {
            Ok(sections) => {
                return Ok(Some(LoadedCheckpoint {
                    index: *index,
                    sections,
                    corrupt_skipped,
                }));
            }
            Err(_) => corrupt_skipped += 1,
        }
    }
    Ok(None)
}

/// Lists `ckpt-<index>.hero` files in `dir`, sorted by index ascending.
fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>, CheckpointError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix(FILE_PREFIX)
            .and_then(|s| s.strip_suffix(FILE_EXT))
        else {
            continue;
        };
        if let Ok(index) = stem.parse::<u64>() {
            out.push((index, entry.path()));
        }
    }
    out.sort_unstable_by_key(|&(index, _)| index);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hero-ckpt-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn dummy_sections(tag: u8) -> Vec<(String, Vec<u8>)> {
        vec![("blob".to_string(), vec![tag; 64])]
    }

    #[test]
    fn snapshot_sections_roundtrip() {
        let mut recorder = Recorder::new();
        recorder.push("reward", 1.5);
        recorder.push("reward", -0.5);
        let snap = TrainerSnapshot {
            next_episode: 7,
            step_counter: 123,
            update_counter: 45,
            trainer_rng: [1, 2, 3, 4],
            env_rng: vec![5, 6, 7, 8],
            recorder,
            telemetry: None,
            workers: None,
            kernel_mode: KernelMode::Strict,
            team_sections: vec![
                ("team/last_options".to_string(), vec![9, 9]),
                ("agent0/bookkeeping".to_string(), vec![1]),
            ],
        };
        let back = TrainerSnapshot::from_sections(&snap.to_sections()).unwrap();
        assert_eq!(back.next_episode, 7);
        assert_eq!(back.step_counter, 123);
        assert_eq!(back.update_counter, 45);
        assert_eq!(back.trainer_rng, [1, 2, 3, 4]);
        assert_eq!(back.env_rng, vec![5, 6, 7, 8]);
        assert_eq!(back.recorder.series("reward"), snap.recorder.series("reward"));
        assert!(back.workers.is_none(), "no workers section round-trips as None");
        assert_eq!(back.team_sections.len(), 2);
    }

    #[test]
    fn worker_states_roundtrip_when_present() {
        let snap = TrainerSnapshot {
            next_episode: 1,
            step_counter: 2,
            update_counter: 3,
            trainer_rng: [1, 2, 3, 4],
            env_rng: vec![5, 6, 7, 8],
            recorder: Recorder::new(),
            telemetry: None,
            workers: Some(WorkerStates {
                rngs: vec![vec![5, 6, 7, 8], vec![9, 10, 11, 12]],
                last_options: vec![vec![0, 2], vec![1, 1]],
            }),
            kernel_mode: KernelMode::Strict,
            team_sections: Vec::new(),
        };
        let back = TrainerSnapshot::from_sections(&snap.to_sections()).unwrap();
        assert_eq!(back.workers, snap.workers);
    }

    #[test]
    fn store_rotates_and_retains_last_k() {
        let dir = temp_dir("rotate");
        let mut store = CheckpointStore::open(&dir, 2).unwrap();
        for i in 0..5u8 {
            assert!(store.save(&dummy_sections(i), &FaultPlan::none()));
        }
        let files = list_checkpoints(&dir).unwrap();
        assert_eq!(files.len(), 2, "retention must prune to K");
        assert_eq!(files[0].0, 3);
        assert_eq!(files[1].0, 4);
        // Numbering continues after reopening.
        let store2 = CheckpointStore::open(&dir, 2).unwrap();
        assert_eq!(store2.next_index(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_latest_falls_back_past_corruption() {
        let dir = temp_dir("fallback");
        let mut store = CheckpointStore::open(&dir, 3).unwrap();
        store.save(&dummy_sections(1), &FaultPlan::none());
        store.save(&dummy_sections(2), &FaultPlan::none());
        // Corrupt the newest file.
        let files = list_checkpoints(&dir).unwrap();
        let newest = &files.last().unwrap().1;
        let bytes = std::fs::read(newest).unwrap();
        std::fs::write(newest, &bytes[..bytes.len() / 2]).unwrap();

        let loaded = load_latest(&dir).unwrap().expect("older checkpoint valid");
        assert_eq!(loaded.index, 0);
        assert_eq!(loaded.corrupt_skipped, 1);
        assert_eq!(loaded.sections[0].1, vec![1u8; 64]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_latest_falls_back_past_multiple_consecutive_corrupt_files() {
        let dir = temp_dir("multifallback");
        let mut store = CheckpointStore::open(&dir, 4).unwrap();
        for tag in 1..=4u8 {
            store.save(&dummy_sections(tag), &FaultPlan::none());
        }
        // Corrupt the newest THREE files, each a different way: truncation,
        // a CRC-breaking bit flip, and outright garbage.
        let files = list_checkpoints(&dir).unwrap();
        assert_eq!(files.len(), 4);
        let bytes = std::fs::read(&files[3].1).unwrap();
        std::fs::write(&files[3].1, &bytes[..bytes.len() / 2]).unwrap();
        hero_faultplan::corrupt_file(&files[2].1, hero_faultplan::CorruptMode::BitFlip).unwrap();
        std::fs::write(&files[1].1, b"not a checkpoint").unwrap();

        let loaded = load_latest(&dir).unwrap().expect("oldest checkpoint still valid");
        assert_eq!(loaded.index, 0);
        assert_eq!(loaded.corrupt_skipped, 3, "every newer corrupt file is counted");
        assert_eq!(loaded.sections[0].1, vec![1u8; 64]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_latest_yields_none_when_every_file_is_corrupt() {
        let dir = temp_dir("allcorrupt");
        let mut store = CheckpointStore::open(&dir, 3).unwrap();
        for tag in 1..=2u8 {
            store.save(&dummy_sections(tag), &FaultPlan::none());
        }
        for (_, path) in list_checkpoints(&dir).unwrap() {
            std::fs::write(path, b"garbage").unwrap();
        }
        assert!(load_latest(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn io_faults_retry_then_succeed_or_drop() {
        let dir = temp_dir("iofault");
        let mut store = CheckpointStore::open(&dir, 3).unwrap();
        // Transient fault on save 0: first attempt fails, retry succeeds.
        let plan = FaultPlan::parse("io-err@save:0").unwrap();
        assert!(store.save(&dummy_sections(1), &plan));
        // Persistent fault on save 1: all attempts fail, save drops.
        let plan = FaultPlan::parse("io-err@save:1:persistent").unwrap();
        assert!(!store.save(&dummy_sections(2), &plan));
        // Training would continue; the next save works again.
        assert!(store.save(&dummy_sections(3), &FaultPlan::none()));
        let loaded = load_latest(&dir).unwrap().unwrap();
        assert_eq!(loaded.index, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retry_budget_is_configurable_and_backoff_can_be_disabled() {
        let dir = temp_dir("retrycfg");
        let mut store = CheckpointStore::open(&dir, 3).unwrap();
        store.set_backoff_base_ms(0); // deterministic AND free of wall-clock cost
        // One attempt only: a transient first-attempt fault now drops the
        // save instead of being retried away.
        store.set_max_attempts(1);
        let plan = FaultPlan::parse("io-err@save:0").unwrap();
        let t0 = std::time::Instant::now();
        assert!(!store.save(&dummy_sections(1), &plan));
        // Five attempts: a fault injected on attempts 0..4 would still fail,
        // but the plain transient fault (attempt 0 only) succeeds on retry.
        store.set_max_attempts(5);
        let plan = FaultPlan::parse("io-err@save:1").unwrap();
        assert!(store.save(&dummy_sections(2), &plan));
        // disk-full is persistent: even five attempts end in a counted drop.
        let plan = FaultPlan::parse("disk-full@save:2").unwrap();
        assert!(!store.save(&dummy_sections(3), &plan));
        assert!(
            t0.elapsed() < Duration::from_millis(500),
            "zero-base backoff must not sleep through retries"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_or_missing_dir_loads_none() {
        let dir = temp_dir("empty");
        assert!(load_latest(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(load_latest(&dir).unwrap().is_none());
    }
}

//! The two-stage HERO training pipeline (Fig. 2) and greedy evaluation.
//!
//! Stage one trains the low-level skills in parallel single-vehicle
//! environments ([`crate::skills::SkillLibrary::train`], Algorithm 2).
//! Stage two — this module — runs Algorithm 1: the agents act through
//! their (frozen) skills in the multi-vehicle world while learning the
//! high-level cooperative option policy with opponent modeling.

use std::path::PathBuf;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use hero_autograd::CheckpointError;
use hero_faultplan::{FaultPlan, KillMode};
use hero_rl::metrics::Recorder;
use hero_rl::snapshot::{self, Codec};
use hero_rl::telemetry;
use hero_sim::env::{CooperativeWorld, Observation};
use hero_sim::vehicle::VehicleCommand;

use hero_sim::track::Track;
use hero_sim::vehicle::VehicleState;

use crate::agent::{AgentCursor, HeroAgent};
use crate::checkpoint::{self, CheckpointStore, TrainerSnapshot};
use crate::config::{HeroConfig, TerminationMode};
use crate::skills::SkillLibrary;

/// The team's option-execution state for one world: one [`AgentCursor`]
/// per agent plus the joint last-observed-options vector.
///
/// The sequential loop keeps this state inside [`HeroTeam`]; the batched
/// rollout engine owns one cursor per in-flight world and drives the team
/// through [`HeroTeam::decide_in`] / [`HeroTeam::record_in`].
#[derive(Clone, Debug)]
pub struct TeamCursor {
    agents: Vec<AgentCursor>,
    last_options: Vec<usize>,
}

impl TeamCursor {
    /// The per-agent cursors.
    pub fn agents(&self) -> &[AgentCursor] {
        &self.agents
    }

    /// The joint last-observed-options vector (`o_{1:t-1}` in the paper).
    pub fn last_options(&self) -> &[usize] {
        &self.last_options
    }

    /// Overwrites the joint last-options vector (checkpoint restore).
    pub fn set_last_options(&mut self, last: Vec<usize>) {
        assert_eq!(last.len(), self.agents.len(), "cursor/team size mismatch");
        self.last_options = last;
    }

    /// Clears every agent's option state for a new episode. The joint
    /// last-options vector persists across episodes, exactly as the
    /// sequential loop's does.
    pub fn begin_episode(&mut self) {
        for a in &mut self.agents {
            a.clear();
        }
    }

    /// Whether no agent holds an active option or open segment.
    pub fn is_idle(&self) -> bool {
        self.agents.iter().all(|a| a.is_idle())
    }

    fn others_last(&self, k: usize) -> Vec<usize> {
        self.last_options
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != k)
            .map(|(_, &o)| o)
            .collect()
    }
}

/// A team of HERO agents sharing one trained skill library.
#[derive(Debug)]
pub struct HeroTeam {
    agents: Vec<HeroAgent>,
    skills: Arc<SkillLibrary>,
    cfg: HeroConfig,
    last_options: Vec<usize>,
}

impl HeroTeam {
    /// Creates a team of `n_learners` agents over `obs_dim`-dimensional
    /// high-level observations.
    pub fn new(
        n_learners: usize,
        obs_dim: usize,
        skills: Arc<SkillLibrary>,
        cfg: HeroConfig,
        seed: u64,
    ) -> Self {
        assert!(n_learners >= 1, "a team needs at least one learner");
        let mut rng = StdRng::seed_from_u64(seed);
        let agents = (0..n_learners)
            .map(|k| {
                let mut a =
                    HeroAgent::new(obs_dim, n_learners.saturating_sub(1), cfg, &mut rng);
                a.set_metric_label(format!("agent{k}"));
                a
            })
            .collect();
        Self {
            agents,
            skills,
            cfg,
            last_options: vec![0; n_learners],
        }
    }

    /// The team's agents.
    pub fn agents(&self) -> &[HeroAgent] {
        &self.agents
    }

    /// Mutable access to the team's agents.
    pub fn agents_mut(&mut self) -> &mut [HeroAgent] {
        &mut self.agents
    }

    /// The shared skill library.
    pub fn skills(&self) -> &SkillLibrary {
        &self.skills
    }

    /// The team's configuration.
    pub fn config(&self) -> &HeroConfig {
        &self.cfg
    }

    fn others_last(&self, k: usize) -> Vec<usize> {
        self.last_options
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != k)
            .map(|(_, &o)| o)
            .collect()
    }

    /// Runs the per-step decision pass: ensures every agent has an active
    /// option and produces one command per *vehicle* (scripted slots get
    /// a default command, which the environment ignores).
    pub fn decide<W: CooperativeWorld>(
        &mut self,
        env: &W,
        obs: &[Observation],
        rng: &mut StdRng,
        explore: bool,
    ) -> Vec<VehicleCommand> {
        let track = env.config().track;
        let learners = env.learner_indices();
        assert_eq!(learners.len(), self.agents.len(), "team/world size mismatch");
        for (k, &v) in learners.iter().enumerate() {
            let high_obs = obs[v].high_vec();
            let state = env.vehicle_state(v);
            let others = self.others_last(k);
            let option =
                self.agents[k].ensure_option(&high_obs, &state, &track, &others, rng, explore);
            self.last_options[k] = option.index();
        }
        let mut commands = vec![VehicleCommand::default(); env.num_vehicles()];
        for (k, &v) in learners.iter().enumerate() {
            let active = *self.agents[k].active().expect("option ensured above");
            let state = env.vehicle_state(v);
            // The skills are frozen after stage one (Fig. 2), so they
            // always execute deterministically; exploration happens in
            // the high-level option space only.
            commands[v] = self.skills.command(
                active.option,
                &obs[v],
                &state,
                active.target_d(&track),
                rng,
                false,
            );
        }
        commands
    }

    /// Records the step outcome into every agent, handling synchronous
    /// termination when configured. `pre_obs` are the observations the
    /// decisions were made from.
    pub fn record<W: CooperativeWorld>(
        &mut self,
        env: &W,
        pre_obs: &[Observation],
        rewards: &[f32],
        next_obs: &[Observation],
        done: bool,
    ) {
        let track = env.config().track;
        let learners = env.learner_indices();
        let mut any_terminated = false;
        for (k, &v) in learners.iter().enumerate() {
            let others = self.others_last(k);
            let terminated = self.agents[k].record_step(
                &pre_obs[v].high_vec(),
                &others,
                rewards[v],
                &next_obs[v].high_vec(),
                &env.vehicle_state(v),
                &track,
                done,
            );
            any_terminated |= terminated;
        }
        if self.cfg.termination == TerminationMode::Synchronous && any_terminated {
            for (k, &v) in learners.iter().enumerate() {
                self.agents[k].force_terminate(&next_obs[v].high_vec(), done);
            }
        }
    }

    /// A fresh per-world cursor seeded from the team's current joint
    /// last-options vector (so a cursor created after a checkpoint restore
    /// continues exactly where the sequential state machine would).
    pub fn new_cursor(&self) -> TeamCursor {
        TeamCursor {
            agents: vec![AgentCursor::new(); self.agents.len()],
            last_options: self.last_options.clone(),
        }
    }

    /// Folds a world cursor's joint bookkeeping back into the team so that
    /// checkpoints ([`HeroTeam::save_state`]) and later sequential use
    /// (e.g. [`evaluate_team`]) see the trained last-options vector.
    pub fn absorb_cursor(&mut self, cur: &TeamCursor) {
        assert_eq!(cur.last_options.len(), self.last_options.len());
        self.last_options = cur.last_options.clone();
    }

    /// [`HeroTeam::decide`] against an external world cursor, with the
    /// world shipped as data (track + vehicle states + observations)
    /// instead of borrowed — the actor/learner split runs this on the
    /// learner thread against state received from actor threads. Randomness
    /// and telemetry follow exactly the sequential order.
    #[allow(clippy::too_many_arguments)]
    pub fn decide_in(
        &mut self,
        cur: &mut TeamCursor,
        track: &Track,
        learners: &[usize],
        num_vehicles: usize,
        states: &[VehicleState],
        obs: &[Observation],
        rng: &mut StdRng,
        explore: bool,
    ) -> Vec<VehicleCommand> {
        self.decide_cursor(cur, track, learners, num_vehicles, states, obs, None, rng, explore)
    }

    /// [`HeroTeam::decide_in`] with per-agent policy logits precomputed by
    /// a batched forward pass over many worlds ([`HeroAgent::batch_logits`]).
    /// `logits[k]` is `Some` only for agents the caller batched (those with
    /// no active option); `None` falls back to the scalar path.
    #[allow(clippy::too_many_arguments)]
    pub fn decide_in_with_logits(
        &mut self,
        cur: &mut TeamCursor,
        track: &Track,
        learners: &[usize],
        num_vehicles: usize,
        states: &[VehicleState],
        obs: &[Observation],
        logits: &[Option<Vec<f32>>],
        rng: &mut StdRng,
        explore: bool,
    ) -> Vec<VehicleCommand> {
        self.decide_cursor(
            cur, track, learners, num_vehicles, states, obs, Some(logits), rng, explore,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn decide_cursor(
        &mut self,
        cur: &mut TeamCursor,
        track: &Track,
        learners: &[usize],
        num_vehicles: usize,
        states: &[VehicleState],
        obs: &[Observation],
        logits: Option<&[Option<Vec<f32>>]>,
        rng: &mut StdRng,
        explore: bool,
    ) -> Vec<VehicleCommand> {
        assert_eq!(learners.len(), self.agents.len(), "team/world size mismatch");
        for (k, &v) in learners.iter().enumerate() {
            let high_obs = obs[v].high_vec();
            let others = cur.others_last(k);
            let option = match logits.and_then(|l| l[k].as_ref()) {
                Some(row) => self.agents[k].ensure_option_from_logits(
                    &mut cur.agents[k],
                    row,
                    &high_obs,
                    &states[v],
                    track,
                    &others,
                    rng,
                    explore,
                ),
                None => self.agents[k].ensure_option_in(
                    &mut cur.agents[k],
                    &high_obs,
                    &states[v],
                    track,
                    &others,
                    rng,
                    explore,
                ),
            };
            cur.last_options[k] = option.index();
        }
        let mut commands = vec![VehicleCommand::default(); num_vehicles];
        for (k, &v) in learners.iter().enumerate() {
            let active = *cur.agents[k].active().expect("option ensured above");
            // The skills are frozen after stage one (Fig. 2), so they
            // always execute deterministically; exploration happens in
            // the high-level option space only.
            commands[v] = self.skills.command(
                active.option,
                &obs[v],
                &states[v],
                active.target_d(track),
                rng,
                false,
            );
        }
        commands
    }

    /// [`HeroTeam::record`] against an external world cursor, with the
    /// post-step world shipped as data.
    #[allow(clippy::too_many_arguments)]
    pub fn record_in(
        &mut self,
        cur: &mut TeamCursor,
        track: &Track,
        learners: &[usize],
        states: &[VehicleState],
        pre_obs: &[Observation],
        rewards: &[f32],
        next_obs: &[Observation],
        done: bool,
    ) {
        let mut any_terminated = false;
        for (k, &v) in learners.iter().enumerate() {
            let others = cur.others_last(k);
            let terminated = self.agents[k].record_step_in(
                &mut cur.agents[k],
                &pre_obs[v].high_vec(),
                &others,
                rewards[v],
                &next_obs[v].high_vec(),
                &states[v],
                track,
                done,
            );
            any_terminated |= terminated;
        }
        if self.cfg.termination == TerminationMode::Synchronous && any_terminated {
            for (k, &v) in learners.iter().enumerate() {
                self.agents[k].force_terminate_in(&mut cur.agents[k], &next_obs[v].high_vec(), done);
            }
        }
    }

    /// Evaluation-time counterpart of [`HeroTeam::record`]: ticks every
    /// agent's option state machine without storing experience.
    pub fn observe_eval<W: CooperativeWorld>(&mut self, env: &W, done: bool) {
        let track = env.config().track;
        let learners = env.learner_indices();
        for (k, &v) in learners.iter().enumerate() {
            let state = env.vehicle_state(v);
            self.agents[k].observe_step_eval(&state, &track, done);
        }
    }

    /// Clears per-episode state on every agent.
    pub fn begin_episode(&mut self) {
        for a in &mut self.agents {
            a.begin_episode();
        }
    }

    /// Captures the team's full state — every agent plus the joint
    /// last-options vector — as named checkpoint sections.
    ///
    /// # Panics
    ///
    /// Panics when any agent holds a half-finished option segment:
    /// snapshots are only taken at episode boundaries.
    pub fn save_state(&self) -> Vec<(String, Vec<u8>)> {
        let mut sections = Vec::new();
        let mut last = Vec::new();
        self.last_options.encode(&mut last);
        sections.push(("team/last_options".to_string(), last));
        for (k, agent) in self.agents.iter().enumerate() {
            sections.extend(
                agent
                    .save_state()
                    .into_iter()
                    .map(|(name, bytes)| (format!("agent{k}/{name}"), bytes)),
            );
        }
        sections
    }

    /// Restores state captured by [`HeroTeam::save_state`] into a team
    /// built with the same size, dimensions, and config.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] when sections are missing, malformed,
    /// or shaped for a different team.
    pub fn load_state(&mut self, sections: &[(String, Vec<u8>)]) -> Result<(), CheckpointError> {
        let last_blob =
            hero_autograd::serialize::require_section(sections, "team/last_options")?;
        let mut r = snapshot::Reader::new(last_blob);
        let mapped = |e: snapshot::SnapshotError| {
            CheckpointError::Malformed(format!("team/last_options: {e}"))
        };
        let last_options: Vec<usize> = Codec::decode(&mut r).map_err(mapped)?;
        r.finish().map_err(mapped)?;
        if last_options.len() != self.agents.len() {
            return Err(CheckpointError::Malformed(format!(
                "checkpoint is for a team of {}, this team has {}",
                last_options.len(),
                self.agents.len()
            )));
        }
        for (k, agent) in self.agents.iter_mut().enumerate() {
            let prefix = format!("agent{k}/");
            let agent_sections: Vec<(String, Vec<u8>)> = sections
                .iter()
                .filter_map(|(name, bytes)| {
                    name.strip_prefix(&prefix)
                        .map(|rest| (rest.to_string(), bytes.clone()))
                })
                .collect();
            agent.load_state(&agent_sections)?;
        }
        self.last_options = last_options;
        Ok(())
    }

    /// One learning pass over every agent; returns mean losses when any
    /// agent updated.
    ///
    /// With [`HeroConfig::parallel_update`] set (the default) the compute
    /// phase runs on one scoped thread per agent. The result is
    /// bit-identical to the sequential path: minibatches are sampled on
    /// this thread in agent order (the only RNG consumers), each worker
    /// captures its telemetry instead of recording it, and the captures
    /// are replayed here in agent order after a deterministic join — so
    /// counter totals, value histograms, loss sums, and checkpoint bytes
    /// cannot depend on thread interleaving.
    pub fn update(&mut self, rng: &mut StdRng) -> Option<(f32, f32)> {
        let results: Vec<Option<hero_baselines::common::UpdateStats>> =
            if self.cfg.parallel_update && self.agents.len() > 1 {
                let prepared: Vec<_> = self
                    .agents
                    .iter()
                    .map(|a| a.prepare_update(rng))
                    .collect();
                let capture = telemetry::is_enabled();
                let outcomes: Vec<_> = crossbeam::thread::scope(|s| {
                    let handles: Vec<_> = self
                        .agents
                        .iter_mut()
                        .zip(prepared)
                        .map(|(agent, batches)| {
                            s.spawn(move || {
                                if capture {
                                    telemetry::begin_capture();
                                }
                                let stats = agent.apply_update(batches);
                                (stats, telemetry::take_capture())
                            })
                        })
                        .collect();
                    // Join in agent-index order; panics propagate.
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("agent update thread panicked"))
                        .collect()
                });
                outcomes
                    .into_iter()
                    .map(|(stats, events)| {
                        telemetry::replay(events);
                        stats
                    })
                    .collect()
            } else {
                self.agents.iter_mut().map(|a| a.update(rng)).collect()
            };
        let mut critic = 0.0;
        let mut actor = 0.0;
        let mut count = 0;
        for stats in results.into_iter().flatten() {
            critic += stats.critic_loss;
            actor += stats.actor_loss;
            count += 1;
        }
        (count > 0).then(|| (critic / count as f32, actor / count as f32))
    }
}

/// Knobs of the cooperative-training loop.
#[derive(Clone, Copy, Debug)]
pub struct TrainOptions {
    /// Episodes to run.
    pub episodes: usize,
    /// Run one learning pass every this many environment steps.
    pub update_every: usize,
    /// RNG seed for action sampling.
    pub seed: u64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            episodes: 100,
            update_every: 1,
            seed: 0,
        }
    }
}

/// Trains the team in `env` (Algorithm 1), recording per-episode series:
/// `reward` (mean per-step learner reward), `collision` (0/1),
/// `success` (merge success rate, only for episodes with a blocked
/// learner), and `mean_speed`, plus `critic_loss`/`actor_loss` per update.
pub fn train_team<W: CooperativeWorld>(
    team: &mut HeroTeam,
    env: &mut W,
    opts: &TrainOptions,
) -> Recorder {
    // Delegates with checkpointing disabled so the plain and crash-safe
    // loops cannot drift apart step-for-step. The default config neither
    // resumes nor runs actors, so no TrainError variant is reachable.
    train_team_checkpointed(team, env, opts, &CheckpointConfig::default())
        .expect("default checkpoint config cannot fail")
        .recorder
}

/// A training run that could not start or could not finish, reported as a
/// typed error so binaries exit nonzero with a message instead of
/// panicking with a backtrace.
#[derive(Debug)]
pub enum TrainError {
    /// Resuming from the checkpoint directory was refused (e.g. the
    /// checkpoint was written under a different GEMM kernel mode).
    /// Starting fresh would silently discard the run, so the caller must
    /// decide.
    ResumeRefused(hero_autograd::CheckpointError),
    /// Every rollout actor died and the supervisor's respawn budget is
    /// exhausted: the run ends early with a typed abort instead of a
    /// deadlock or a silent partial result.
    FleetLost {
        /// Episodes fully completed before the fleet was lost.
        episodes_run: usize,
        /// Whether a boundary-clean emergency checkpoint was durably
        /// written before aborting (resume picks up from it).
        emergency_checkpoint_saved: bool,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ResumeRefused(e) => write!(f, "refusing to resume: {e}"),
            Self::FleetLost { episodes_run, emergency_checkpoint_saved } => write!(
                f,
                "actor fleet lost after {episodes_run} completed episode(s) with the respawn \
                 budget exhausted ({})",
                if *emergency_checkpoint_saved {
                    "emergency checkpoint saved; rerun with --resume"
                } else {
                    "no boundary-clean state to emergency-checkpoint"
                }
            ),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::ResumeRefused(e) => Some(e),
            Self::FleetLost { .. } => None,
        }
    }
}

/// How (and whether) [`train_team_checkpointed`] checkpoints and injects
/// faults.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Save a checkpoint every this many episodes; `0` disables saving.
    pub every: usize,
    /// Directory for checkpoint files (required for saving or resuming).
    pub dir: Option<PathBuf>,
    /// Resume from the newest valid checkpoint in `dir` (fresh start when
    /// none is loadable).
    pub resume: bool,
    /// How many good checkpoints to retain.
    pub retain: usize,
    /// Deterministic fault injection (kills, IO errors, corruption,
    /// gradient poisoning); [`FaultPlan::none`] in production.
    pub fault_plan: FaultPlan,
    /// How a `kill@ep:N` fault terminates the run.
    pub kill_mode: KillMode,
    /// Write attempts per checkpoint save before it degrades to a counted
    /// drop (`--checkpoint-retry N` = `N + 1` attempts).
    pub save_attempts: usize,
    /// Retry-backoff base in milliseconds (retry `k` sleeps `base << k`,
    /// deterministically — no jitter); `0` disables sleeping (tests).
    pub save_backoff_ms: u64,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        Self {
            every: 0,
            dir: None,
            resume: false,
            retain: 3,
            fault_plan: FaultPlan::none(),
            kill_mode: KillMode::Return,
            save_attempts: checkpoint::DEFAULT_SAVE_ATTEMPTS,
            save_backoff_ms: checkpoint::DEFAULT_BACKOFF_BASE_MS,
        }
    }
}

impl CheckpointConfig {
    /// Opens the configured checkpoint store (when saving is enabled),
    /// with the retry budget and backoff schedule applied.
    pub(crate) fn open_store(&self) -> Option<CheckpointStore> {
        if self.every == 0 {
            return None;
        }
        let dir = self.dir.as_ref()?;
        let mut store = CheckpointStore::open(dir, self.retain).ok()?;
        store.set_max_attempts(self.save_attempts);
        store.set_backoff_base_ms(self.save_backoff_ms);
        Some(store)
    }
}

/// The result of a checkpointed training run.
#[derive(Debug)]
pub struct TrainOutcome {
    /// The per-episode metric series (cumulative across resumes).
    pub recorder: Recorder,
    /// `false` when a fault-plan kill stopped the run early
    /// ([`KillMode::Return`] only — [`KillMode::Exit`] never returns).
    pub completed: bool,
    /// Episodes actually run in this invocation (excludes episodes
    /// restored from a checkpoint).
    pub episodes_run: usize,
}

/// [`train_team`] plus crash safety: periodically snapshots the complete
/// trainer state (team, RNG streams, recorder, telemetry) into a rotating
/// checkpoint directory, optionally resumes from the newest valid
/// checkpoint, and honors a deterministic [`FaultPlan`].
///
/// With `ckpt.every == 0`, no directory, and an empty fault plan this is
/// step-for-step identical to [`train_team`]. A seeded run that is killed
/// and resumed produces bit-identical metric series and telemetry (modulo
/// the `checkpoint/*` counters themselves) to an uninterrupted run with
/// the same checkpoint cadence.
///
/// # Errors
///
/// [`TrainError::ResumeRefused`] when `ckpt.resume` finds a checkpoint
/// that must not be resumed (kernel-mode mismatch); corrupt checkpoints
/// fall back or start fresh instead.
pub fn train_team_checkpointed<W: CooperativeWorld>(
    team: &mut HeroTeam,
    env: &mut W,
    opts: &TrainOptions,
    ckpt: &CheckpointConfig,
) -> Result<TrainOutcome, TrainError> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut rec = Recorder::new();
    let mut step_counter = 0usize;
    let mut update_counter = 0usize;
    let mut start_episode = 0usize;

    if ckpt.resume {
        if let Some(dir) = &ckpt.dir {
            match checkpoint::load_latest(dir) {
                Ok(Some(loaded)) => {
                    match TrainerSnapshot::from_sections(&loaded.sections)
                        .and_then(|snap| snap.verify_kernel_mode().map(|()| snap))
                        .and_then(|snap| restore_snapshot(team, env, &snap).map(|()| snap))
                    {
                        Ok(snap) => {
                            // Counters AFTER the telemetry restore, which
                            // would otherwise wipe them.
                            telemetry::counter_add("checkpoint/loaded", 1);
                            telemetry::flight_event(
                                telemetry::FlightEventKind::CheckpointLoaded {
                                    index: loaded.index,
                                },
                            );
                            telemetry::counter_add(
                                "checkpoint/corrupt_skipped",
                                loaded.corrupt_skipped as u64,
                            );
                            if loaded.corrupt_skipped > 0 {
                                telemetry::counter_add("checkpoint/fallback", 1);
                            }
                            rng = StdRng::from_state(snap.trainer_rng);
                            rec = snap.recorder;
                            step_counter = snap.step_counter;
                            update_counter = snap.update_counter;
                            start_episode = snap.next_episode;
                        }
                        Err(e @ hero_autograd::CheckpointError::KernelModeMismatch { .. }) => {
                            // A cross-mode resume would diverge from every
                            // golden while looking healthy; starting fresh
                            // would silently discard the run. Refuse with a
                            // typed error the binary turns into exit 1.
                            telemetry::progress(&format!("refusing to resume: {e}"));
                            let _ = telemetry::flush();
                            return Err(TrainError::ResumeRefused(e));
                        }
                        Err(e) => {
                            telemetry::counter_add("checkpoint/corrupt_skipped", 1);
                            telemetry::progress(&format!("resume failed, starting fresh: {e}"));
                        }
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    telemetry::progress(&format!("checkpoint dir unreadable, starting fresh: {e}"));
                }
            }
        }
    }

    let mut store = ckpt.open_store();

    let mut episodes_run = 0usize;
    for episode in start_episode..opts.episodes {
        if ckpt.fault_plan.should_kill(episode) {
            telemetry::counter_add("checkpoint/fault_kill", 1);
            telemetry::flight_event(telemetry::FlightEventKind::KillInjected {
                episode: episode as u64,
            });
            telemetry::mark_faulted();
            let _ = telemetry::flush();
            match ckpt.kill_mode {
                KillMode::Exit => std::process::exit(137),
                KillMode::Return => {
                    return Ok(TrainOutcome {
                        recorder: rec,
                        completed: false,
                        episodes_run,
                    })
                }
            }
        }
        let mut obs = env.reset();
        team.begin_episode();
        let mut ep_reward = 0.0;
        let mut ep_speed = 0.0;
        let mut steps = 0usize;
        while !env.is_done() {
            let out = {
                let _rollout = telemetry::span("rollout");
                let commands = team.decide(env, &obs, &mut rng, true);
                let out = env.step(&commands);
                team.record(env, &obs, &out.rewards, &out.observations, out.done);
                out
            };
            let learners = env.learner_indices();
            ep_reward += learners.iter().map(|&v| out.rewards[v]).sum::<f32>()
                / learners.len() as f32;
            ep_speed += out.mean_speed;
            steps += 1;
            step_counter += 1;
            if step_counter % opts.update_every == 0 {
                let _update = telemetry::span("update");
                if ckpt.fault_plan.nan_grad_at(update_counter) {
                    // Poison one gradient so the optimizer watchdog must
                    // catch and skip it (counted under watchdog/*).
                    if let Some(agent) = team.agents_mut().first_mut() {
                        agent.poison_gradients();
                    }
                }
                update_counter += 1;
                if let Some((c, a)) = team.update(&mut rng) {
                    telemetry::counter_add("grad_updates", 1);
                    telemetry::observe("critic_loss", c as f64);
                    telemetry::observe("actor_loss", a as f64);
                    rec.push("critic_loss", c);
                    rec.push("actor_loss", a);
                }
            }
            obs = out.observations;
        }
        telemetry::counter_add("episodes", 1);
        telemetry::progress(&format!("ep {}", episode + 1));
        record_episode(&mut rec, env, ep_reward, ep_speed, steps);
        episodes_run += 1;

        if let Some(store) = store.as_mut() {
            if ckpt.every > 0 && (episode + 1) % ckpt.every == 0 {
                let snap = TrainerSnapshot {
                    next_episode: episode + 1,
                    step_counter,
                    update_counter,
                    trainer_rng: rng.state(),
                    env_rng: env.rng_state(),
                    recorder: rec.clone(),
                    telemetry: telemetry::export_state(),
                    workers: None,
                    kernel_mode: hero_autograd::kernel_mode(),
                    team_sections: team.save_state(),
                };
                store.save(&snap.to_sections(), &ckpt.fault_plan);
            }
        }
    }
    Ok(TrainOutcome {
        recorder: rec,
        completed: true,
        episodes_run,
    })
}

pub(crate) fn restore_snapshot<W: CooperativeWorld>(
    team: &mut HeroTeam,
    env: &mut W,
    snap: &TrainerSnapshot,
) -> Result<(), hero_autograd::CheckpointError> {
    team.load_state(&snap.team_sections)?;
    env.set_rng_state(&snap.env_rng);
    if let Some(state) = &snap.telemetry {
        let _ = telemetry::restore_state(state);
    }
    Ok(())
}

/// Greedy evaluation results over a batch of episodes (the paper's
/// Sec. V-B metrics).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvalStats {
    /// Fraction of episodes that ended in a collision.
    pub collision_rate: f32,
    /// Fraction of blocked learners that merged successfully.
    pub success_rate: f32,
    /// Mean vehicle speed over all steps.
    pub mean_speed: f32,
    /// Mean per-step learner reward.
    pub mean_reward: f32,
}

/// Evaluates the team greedily (no exploration, no learning) for
/// `episodes` episodes.
pub fn evaluate_team<W: CooperativeWorld>(
    team: &mut HeroTeam,
    env: &mut W,
    episodes: usize,
    seed: u64,
) -> EvalStats {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut collisions = 0usize;
    let mut merges = 0usize;
    let mut merge_candidates = 0usize;
    let mut speed_sum = 0.0;
    let mut reward_sum = 0.0;
    let mut steps = 0usize;
    for _ in 0..episodes {
        let mut obs = env.reset();
        team.begin_episode();
        while !env.is_done() {
            let commands = team.decide(env, &obs, &mut rng, false);
            let out = env.step(&commands);
            // Keep the agents' option state machines ticking without
            // touching any training buffer.
            team.observe_eval(env, out.done);
            let learners = env.learner_indices();
            reward_sum += learners.iter().map(|&v| out.rewards[v]).sum::<f32>()
                / learners.len() as f32;
            speed_sum += out.mean_speed;
            steps += 1;
            obs = out.observations;
        }
        let learners = env.learner_indices();
        if learners.iter().any(|&v| env.has_collided(v)) {
            collisions += 1;
        }
        for &v in &learners {
            if env.needs_merge(v) {
                merge_candidates += 1;
                if env.has_merged(v) {
                    merges += 1;
                }
            }
        }
    }
    EvalStats {
        collision_rate: collisions as f32 / episodes.max(1) as f32,
        success_rate: if merge_candidates > 0 {
            merges as f32 / merge_candidates as f32
        } else {
            1.0
        },
        mean_speed: speed_sum / steps.max(1) as f32,
        mean_reward: reward_sum / steps.max(1) as f32,
    }
}

fn record_episode<W: CooperativeWorld>(
    rec: &mut Recorder,
    env: &W,
    ep_reward: f32,
    ep_speed: f32,
    steps: usize,
) {
    let learners = env.learner_indices();
    rec.push("reward", ep_reward / steps.max(1) as f32);
    rec.push(
        "collision",
        if learners.iter().any(|&v| env.has_collided(v)) {
            1.0
        } else {
            0.0
        },
    );
    let candidates: Vec<usize> = learners
        .iter()
        .copied()
        .filter(|&v| env.needs_merge(v))
        .collect();
    if !candidates.is_empty() {
        let merged = candidates.iter().filter(|&&v| env.has_merged(v)).count();
        rec.push("success", merged as f32 / candidates.len() as f32);
    }
    rec.push("mean_speed", ep_speed / steps.max(1) as f32);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_baselines::sac::SacConfig;
    use hero_sim::env::EnvConfig;
    use hero_sim::scenario;

    fn small_team(env_cfg: EnvConfig, n: usize) -> HeroTeam {
        let skills = Arc::new(SkillLibrary::untrained(env_cfg, SacConfig {
            hidden: 8,
            ..SacConfig::default()
        }, 0));
        let cfg = HeroConfig {
            hidden: 8,
            batch_size: 8,
            warmup: 8,
            ..HeroConfig::default()
        };
        HeroTeam::new(n, env_cfg.high_dim(), skills, cfg, 1)
    }

    #[test]
    fn training_loop_produces_all_series() {
        let env_cfg = EnvConfig {
            max_steps: 6,
            ..EnvConfig::default()
        };
        let mut env = scenario::two_vehicle_merge(env_cfg, 3);
        let mut team = small_team(env_cfg, 2);
        let rec = train_team(
            &mut team,
            &mut env,
            &TrainOptions {
                episodes: 4,
                update_every: 2,
                seed: 5,
            },
        );
        assert_eq!(rec.series("reward").unwrap().len(), 4);
        assert_eq!(rec.series("collision").unwrap().len(), 4);
        assert_eq!(rec.series("mean_speed").unwrap().len(), 4);
        // The blocked learner exists in every episode of this scenario.
        assert_eq!(rec.series("success").unwrap().len(), 4);
    }

    #[test]
    fn evaluation_is_rate_bounded() {
        let env_cfg = EnvConfig {
            max_steps: 5,
            ..EnvConfig::default()
        };
        let mut env = scenario::congestion(env_cfg, 7);
        let mut team = small_team(env_cfg, 3);
        let stats = evaluate_team(&mut team, &mut env, 3, 9);
        assert!((0.0..=1.0).contains(&stats.collision_rate));
        assert!((0.0..=1.0).contains(&stats.success_rate));
        assert!(stats.mean_speed >= 0.0);
    }

    #[test]
    fn synchronous_mode_closes_all_segments_together() {
        let env_cfg = EnvConfig {
            max_steps: 12,
            ..EnvConfig::default()
        };
        let mut env = scenario::two_vehicle_merge(env_cfg, 11);
        let skills = Arc::new(SkillLibrary::untrained(
            env_cfg,
            SacConfig {
                hidden: 8,
                ..SacConfig::default()
            },
            0,
        ));
        let cfg = HeroConfig {
            hidden: 8,
            batch_size: 8,
            warmup: 8,
            termination: TerminationMode::Synchronous,
            ..HeroConfig::default()
        };
        let mut team = HeroTeam::new(2, env_cfg.high_dim(), skills, cfg, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let mut obs = env.reset();
        team.begin_episode();
        let mut steps = 0;
        while !env.is_done() && steps < 12 {
            let commands = team.decide(&env, &obs, &mut rng, true);
            let out = env.step(&commands);
            team.record(&env, &obs, &out.rewards, &out.observations, out.done);
            // Under synchronous termination no agent may hold an option
            // when another just terminated — i.e. after any step either
            // all agents are active or all are inactive.
            let active_count = team
                .agents()
                .iter()
                .filter(|a| a.current_option().is_some())
                .count();
            assert!(
                active_count == 0 || active_count == team.agents().len(),
                "mixed activity under synchronous termination at step {steps}"
            );
            obs = out.observations;
            steps += 1;
        }
    }

    #[test]
    fn team_size_must_match_world() {
        let env_cfg = EnvConfig::default();
        let env = scenario::congestion(env_cfg, 0); // 3 learners
        let mut team = small_team(env_cfg, 2); // wrong size
        let mut rng = StdRng::seed_from_u64(0);
        let obs: Vec<_> = (0..4).map(|i| hero_sim::env::LaneChangeEnv::observe(&env, i)).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            team.decide(&env, &obs, &mut rng, true)
        }));
        assert!(result.is_err());
    }
}

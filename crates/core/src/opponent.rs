//! The opponent-modeling network (Sec. III-C): each agent trains one
//! network per opponent that predicts the opponent's *option* selection
//! from the agent's own high-level state, by maximizing the observed log
//! likelihood with an entropy regularizer:
//!
//! `L(θ^{-i}) = −E[ log π̂^{-i}(o^{-i} | s_h^i) + λ·H(π̂^{-i}) ]`
//!
//! Modeling temporally extended options instead of primitive actions is
//! the paper's key twist: options are stable over several steps, so the
//! prediction problem is tractable and the learned model stabilizes the
//! high-level Q-function against non-stationarity.

use hero_autograd::diagnostics::StepDiagnostics;
use hero_autograd::nn::{Activation, Mlp, Module};
use hero_autograd::optim::{Adam, Optimizer};
use hero_autograd::{loss, serialize, CheckpointError, Graph, Parameter, Tensor, TensorPool};
use rand::rngs::StdRng;

use hero_rl::buffer::ReplayBuffer;
use hero_rl::rng::{log_softmax, softmax};
use hero_rl::snapshot;

/// One observation for the opponent model: the agent's own high-level
/// state paired with every opponent's observed option.
#[derive(Clone, Debug, PartialEq)]
pub struct OpponentSample {
    /// The observing agent's high-level state `s_h^i`.
    pub obs: Vec<f32>,
    /// The options the opponents selected (one per opponent, in a fixed
    /// order).
    pub options: Vec<usize>,
}

/// A pre-sampled minibatch for [`OpponentModel::update_batch`], produced
/// by [`OpponentModel::sample_batch`].
#[derive(Clone, Debug)]
pub struct OpponentBatch {
    samples: Vec<OpponentSample>,
}

/// Per-opponent option-prediction networks for one agent.
#[derive(Debug)]
pub struct OpponentModel {
    nets: Vec<Mlp>,
    opts: Vec<Adam>,
    buffer: ReplayBuffer<OpponentSample>,
    entropy_weight: f32,
    batch_size: usize,
    n_options: usize,
    informative: bool,
    /// Reused tape arena for update passes (see `Graph::reset`).
    graph: Graph,
}

impl OpponentModel {
    /// Creates models for `n_opponents` opponents, each mapping the
    /// `obs_dim`-dimensional own state to `n_options` logits.
    pub fn new(
        n_opponents: usize,
        obs_dim: usize,
        n_options: usize,
        hidden: usize,
        lr: f32,
        entropy_weight: f32,
        buffer_capacity: usize,
        batch_size: usize,
        rng: &mut StdRng,
    ) -> Self {
        let nets: Vec<Mlp> = (0..n_opponents)
            .map(|j| {
                Mlp::new(
                    &format!("opponent.{j}"),
                    &[obs_dim, hidden, hidden, n_options],
                    Activation::Relu,
                    rng,
                )
            })
            .collect();
        let opts = nets
            .iter()
            .map(|n| {
                let mut opt = Adam::new(n.parameters(), lr);
                opt.set_diagnostics(StepDiagnostics::named("opponent"));
                opt
            })
            .collect();
        Self {
            nets,
            opts,
            buffer: ReplayBuffer::new(buffer_capacity),
            entropy_weight,
            batch_size,
            n_options,
            informative: true,
            graph: Graph::new(),
        }
    }

    /// Disables (or re-enables) the model: while disabled, predictions are
    /// exactly uniform and [`OpponentModel::update`] is a no-op — the
    /// "without opponent modeling" ablation of Sec. III-C.
    pub fn set_informative(&mut self, informative: bool) {
        self.informative = informative;
    }

    /// Whether the model is enabled (see
    /// [`OpponentModel::set_informative`]).
    pub fn is_informative(&self) -> bool {
        self.informative
    }

    /// Number of modeled opponents.
    pub fn num_opponents(&self) -> usize {
        self.nets.len()
    }

    /// Number of samples waiting in the model buffer `D_h^{-i}`.
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// Predicted option *probabilities* for every opponent given the own
    /// state — the `ô^{-i}` fed to the high-level actor and TD target.
    pub fn predict_probs(&self, obs: &[f32]) -> Vec<Vec<f32>> {
        if !self.informative {
            return vec![vec![1.0 / self.n_options as f32; self.n_options]; self.nets.len()];
        }
        self.nets
            .iter()
            .map(|net| {
                let logits = net
                    .infer(&Tensor::from_vec(vec![1, obs.len()], obs.to_vec()))
                    .into_data();
                softmax(&logits)
            })
            .collect()
    }

    /// Batched prediction: option probabilities for every opponent over a
    /// `[batch, obs_dim]` tensor of own states. Returns one
    /// `[batch, n_options]` tensor per opponent.
    pub fn predict_probs_batch(&self, obs: &Tensor) -> Vec<Tensor> {
        let n = obs.shape()[0];
        if !self.informative {
            let uniform = Tensor::full(vec![n, self.n_options], 1.0 / self.n_options as f32);
            return vec![uniform; self.nets.len()];
        }
        self.nets
            .iter()
            .map(|net| {
                let logits = net.infer(obs);
                let mut data = Vec::with_capacity(n * self.n_options);
                for row in 0..n {
                    data.extend(softmax(logits.row(row)));
                }
                Tensor::from_vec(vec![n, self.n_options], data)
            })
            .collect()
    }

    /// [`OpponentModel::predict_probs_batch`] through the inference-only
    /// forward path: no autodiff graph, activations recycled via `pool`.
    /// Bitwise identical to the graph path under strict kernels
    /// ([`Mlp::infer_in`] replicates the tape ops' arithmetic exactly).
    pub fn predict_probs_batch_in(&self, obs: &Tensor, pool: &mut TensorPool) -> Vec<Tensor> {
        let n = obs.shape()[0];
        if !self.informative {
            let uniform = Tensor::full(vec![n, self.n_options], 1.0 / self.n_options as f32);
            return vec![uniform; self.nets.len()];
        }
        self.nets
            .iter()
            .map(|net| {
                let logits = net.infer_in(obs, pool);
                let mut data = Vec::with_capacity(n * self.n_options);
                for row in 0..n {
                    data.extend(softmax(logits.row(row)));
                }
                pool.put(logits.into_data());
                Tensor::from_vec(vec![n, self.n_options], data)
            })
            .collect()
    }

    /// Predicted log-probabilities for every opponent.
    pub fn predict_log_probs(&self, obs: &[f32]) -> Vec<Vec<f32>> {
        if !self.informative {
            let lp = -(self.n_options as f32).ln();
            return vec![vec![lp; self.n_options]; self.nets.len()];
        }
        self.nets
            .iter()
            .map(|net| {
                let logits = net
                    .infer(&Tensor::from_vec(vec![1, obs.len()], obs.to_vec()))
                    .into_data();
                log_softmax(&logits)
            })
            .collect()
    }

    /// Stores one `(s_h^i, o^{-i})` observation (Algorithm 1, line 23).
    ///
    /// # Panics
    ///
    /// Panics when the option count does not match the opponent count.
    pub fn observe(&mut self, obs: Vec<f32>, options: Vec<usize>) {
        assert_eq!(
            options.len(),
            self.nets.len(),
            "one observed option per opponent required"
        );
        self.buffer.push(OpponentSample { obs, options });
    }

    /// One entropy-regularized NLL update per opponent model; returns the
    /// per-opponent losses, or `None` before enough data has arrived.
    pub fn update(&mut self, rng: &mut StdRng) -> Option<Vec<f32>> {
        let batch = self.sample_batch(rng)?;
        Some(self.update_batch(&batch))
    }

    /// Draws the next update's minibatch, or `None` before enough data has
    /// arrived. This is the only RNG-consuming half of an update, so a
    /// coordinator can sample every agent's batch in a fixed order and run
    /// the compute ([`OpponentModel::update_batch`]) on worker threads
    /// without perturbing the random stream.
    pub fn sample_batch(&self, rng: &mut StdRng) -> Option<OpponentBatch> {
        if !self.informative || self.buffer.len() < self.batch_size.min(64) {
            return None;
        }
        let samples: Vec<OpponentSample> = {
            let _span = hero_rl::telemetry::span("replay_sample");
            self.buffer
                .sample(rng, self.batch_size)
                .into_iter()
                .cloned()
                .collect()
        };
        hero_rl::telemetry::counter_add("transitions_sampled", samples.len() as u64);
        Some(OpponentBatch { samples })
    }

    /// The compute half of [`OpponentModel::update`]: trains every
    /// opponent network on the pre-sampled `batch` and returns the
    /// per-opponent NLL losses. Consumes no randomness.
    pub fn update_batch(&mut self, batch: &OpponentBatch) -> Vec<f32> {
        let batch = &batch.samples;
        let obs_rows: Vec<&[f32]> = batch.iter().map(|s| s.obs.as_slice()).collect();
        let obs_t = {
            let d = obs_rows[0].len();
            let mut data = Vec::with_capacity(obs_rows.len() * d);
            for r in &obs_rows {
                data.extend_from_slice(r);
            }
            Tensor::from_vec(vec![obs_rows.len(), d], data)
        };

        let mut losses = Vec::with_capacity(self.nets.len());
        for (j, (net, opt)) in self.nets.iter().zip(&mut self.opts).enumerate() {
            let picked: Vec<usize> = batch.iter().map(|s| s.options[j]).collect();
            // Reuse one graph arena across updates: reset() recycles every
            // node buffer instead of reallocating per minibatch.
            let mut g = std::mem::take(&mut self.graph);
            g.reset();
            let x = g.input(obs_t.clone());
            let logits = net.forward(&mut g, x);
            let targets = g.input(Tensor::one_hot(&picked, self.n_options));
            let nll = loss::cross_entropy(&mut g, logits, targets);
            // Subtract λ·H: minimizing (NLL − λ·H) maximizes logprob + λH.
            let entropy = loss::categorical_entropy(&mut g, logits);
            let ent_term = g.scale(entropy, -self.entropy_weight);
            let l = g.add(nll, ent_term);
            let nll_value = g.value(nll).item();
            losses.push(nll_value);
            if hero_rl::telemetry::is_enabled() {
                // Prediction quality vs the options actually selected:
                // per-batch cross-entropy and top-1 accuracy (DESIGN.md
                // "learning-dynamics metrics": opponent/xent,
                // opponent/accuracy — the Fig. 10 loss curve signal).
                let logit_rows = g.value(logits);
                let correct = picked
                    .iter()
                    .enumerate()
                    .filter(|&(row, &o)| hero_rl::explore::greedy(logit_rows.row(row)) == o)
                    .count();
                hero_rl::telemetry::observe("opponent/xent", nll_value as f64);
                hero_rl::telemetry::observe(
                    "opponent/accuracy",
                    correct as f64 / picked.len().max(1) as f64,
                );
            }
            g.backward(l);
            opt.step();
            self.graph = g;
        }
        losses
    }

    /// Trainable parameters of every opponent network (for checkpointing).
    pub fn parameters(&self) -> Vec<Parameter> {
        self.nets.iter().flat_map(|n| n.parameters()).collect()
    }

    /// Captures the model's full state — every opponent network, its Adam
    /// optimizer, and the observation buffer — as named sections (relative
    /// names; the caller prefixes them per agent).
    pub fn save_state(&self) -> Vec<(String, Vec<u8>)> {
        let mut opts = Vec::new();
        opts.extend_from_slice(&(self.opts.len() as u64).to_le_bytes());
        for opt in &self.opts {
            let blob = serialize::encode_optimizer(&opt.export_state());
            opts.extend_from_slice(&(blob.len() as u64).to_le_bytes());
            opts.extend_from_slice(&blob);
        }
        vec![
            ("params".to_string(), serialize::encode_params(&self.parameters())),
            ("opts".to_string(), opts),
            ("buffer".to_string(), snapshot::encode_replay(&self.buffer)),
        ]
    }

    /// Restores state captured by [`OpponentModel::save_state`] into a
    /// model built with the same dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] when a section is missing, malformed, or
    /// sized for a different opponent count/architecture.
    pub fn load_state(&mut self, sections: &[(String, Vec<u8>)]) -> Result<(), CheckpointError> {
        let malformed = |what: String| CheckpointError::Malformed(what);
        let opts_blob = serialize::require_section(sections, "opts")?;
        let mut r = snapshot::Reader::new(opts_blob);
        let n = r
            .u64()
            .map_err(|e| malformed(format!("opponent opts: {e}")))? as usize;
        if n != self.opts.len() {
            return Err(malformed(format!(
                "checkpoint has {n} opponent optimizers, model has {}",
                self.opts.len()
            )));
        }
        let mut states = Vec::with_capacity(n);
        for _ in 0..n {
            let len = r
                .len(1)
                .map_err(|e| malformed(format!("opponent opts: {e}")))?;
            let blob = r
                .take(len)
                .map_err(|e| malformed(format!("opponent opts: {e}")))?;
            states.push(serialize::decode_optimizer(blob)?);
        }
        let buffer = snapshot::decode_replay::<OpponentSample>(serialize::require_section(
            sections, "buffer",
        )?)
        .map_err(|e| malformed(format!("opponent buffer: {e}")))?;
        serialize::decode_params(
            serialize::require_section(sections, "params")?,
            &self.parameters(),
        )?;
        for (opt, state) in self.opts.iter_mut().zip(states) {
            opt.import_state(state)?;
        }
        self.buffer = buffer;
        Ok(())
    }
}

impl snapshot::Codec for OpponentSample {
    fn encode(&self, out: &mut Vec<u8>) {
        self.obs.encode(out);
        self.options.encode(out);
    }
    fn decode(r: &mut snapshot::Reader<'_>) -> Result<Self, snapshot::SnapshotError> {
        Ok(Self {
            obs: snapshot::Codec::decode(r)?,
            options: snapshot::Codec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn model(rng: &mut StdRng) -> OpponentModel {
        OpponentModel::new(2, 3, 4, 16, 0.01, 0.01, 10_000, 64, rng)
    }

    #[test]
    fn predictions_are_distributions() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = model(&mut rng);
        let probs = m.predict_probs(&[0.1, 0.2, 0.3]);
        assert_eq!(probs.len(), 2);
        for p in &probs {
            assert_eq!(p.len(), 4);
            assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
            assert!(p.iter().all(|&v| v >= 0.0));
        }
        let logp = m.predict_log_probs(&[0.1, 0.2, 0.3]);
        for (p, lp) in probs.iter().zip(&logp) {
            for (a, b) in p.iter().zip(lp) {
                assert!((a.ln() - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn learns_a_state_dependent_opponent_policy() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = model(&mut rng);
        // Opponent 0 always picks option 2 in state A and option 0 in
        // state B; opponent 1 always picks option 1.
        for _ in 0..200 {
            m.observe(vec![1.0, 0.0, 0.0], vec![2, 1]);
            m.observe(vec![0.0, 1.0, 0.0], vec![0, 1]);
        }
        let mut last = Vec::new();
        for _ in 0..200 {
            if let Some(l) = m.update(&mut rng) {
                last = l;
            }
        }
        assert!(!last.is_empty());
        let probs_a = m.predict_probs(&[1.0, 0.0, 0.0]);
        assert!(probs_a[0][2] > 0.7, "opp 0 in state A: {:?}", probs_a[0]);
        assert!(probs_a[1][1] > 0.7, "opp 1: {:?}", probs_a[1]);
        let probs_b = m.predict_probs(&[0.0, 1.0, 0.0]);
        assert!(probs_b[0][0] > 0.7, "opp 0 in state B: {:?}", probs_b[0]);
    }

    #[test]
    fn loss_decreases_on_predictable_opponent() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = model(&mut rng);
        for _ in 0..200 {
            m.observe(vec![0.5, 0.5, 0.0], vec![3, 0]);
        }
        let first = m.update(&mut rng).unwrap();
        for _ in 0..100 {
            m.update(&mut rng);
        }
        let last = m.update(&mut rng).unwrap();
        assert!(last[0] < first[0], "{first:?} -> {last:?}");
        assert!(last[1] < first[1]);
    }

    #[test]
    fn entropy_regularization_keeps_predictions_soft_early() {
        // With a huge λ the model should stay near uniform even on
        // deterministic data.
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = OpponentModel::new(1, 2, 4, 16, 0.01, 5.0, 1_000, 32, &mut rng);
        for _ in 0..100 {
            m.observe(vec![1.0, 0.0], vec![0]);
        }
        for _ in 0..100 {
            m.update(&mut rng);
        }
        let p = m.predict_probs(&[1.0, 0.0]);
        assert!(
            p[0][0] < 0.6,
            "strong entropy reg must prevent a collapsed prediction: {:?}",
            p[0]
        );
    }

    #[test]
    #[should_panic(expected = "one observed option per opponent")]
    fn observe_rejects_wrong_arity() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = model(&mut rng);
        m.observe(vec![0.0; 3], vec![1]);
    }
}

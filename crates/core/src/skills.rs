//! The low-level skill library (Sec. III-D): SAC policies that execute the
//! options. The paper trains two skills in parallel single-vehicle
//! environments — lane tracking (serving `keep lane` / `slow down` /
//! `accelerate`, conditioned on the option) and lane change — then reuses
//! them inside every agent.

use hero_autograd::serialize::{load_params, save_params};
use hero_autograd::{CheckpointError, Parameter};
use rand::rngs::StdRng;
use rand::SeedableRng;

use hero_baselines::sac::{ObsLayout, SacAgent, SacConfig};
use hero_rl::metrics::Recorder;
use hero_rl::rollout::run_parallel;
use hero_rl::transition::ContinuousTransition;
use hero_sim::env::{EnvConfig, Observation};
use hero_sim::options::{resolve_lane_change_steering, DrivingOption};
use hero_sim::skill_env::{ManeuverResult, SkillEnv, SkillKind, IN_LANE_TRAINED_OPTIONS};
use hero_sim::vehicle::{VehicleCommand, VehicleState};

/// Configuration of skill training.
#[derive(Clone, Copy, Debug)]
pub struct SkillTrainingConfig {
    /// SAC hyper-parameters for both skills.
    pub sac: SacConfig,
    /// Training episodes per skill.
    pub episodes: usize,
    /// Gradient updates applied after each episode.
    pub updates_per_episode: usize,
    /// Encode the camera image with a CNN (the paper's design, Sec. V-B)
    /// instead of flattening it into the MLP. Slower but closer to the
    /// original architecture.
    pub vision: bool,
}

impl Default for SkillTrainingConfig {
    fn default() -> Self {
        Self {
            sac: SacConfig {
                batch_size: 128,
                warmup: 256,
                ..SacConfig::default()
            },
            episodes: 2_000,
            updates_per_episode: 4,
            vision: false,
        }
    }
}

/// The SAC config for one skill: with `vision`, the image prefix of the
/// observation runs through a convolutional encoder and the trailing
/// `extras` scalars (speed, laneID, option conditioning) are concatenated
/// after it.
fn skill_sac_config(base: SacConfig, env_cfg: &EnvConfig, extras: usize, vision: bool) -> SacConfig {
    if vision {
        SacConfig {
            obs_layout: ObsLayout::Image {
                channels: 1,
                height: env_cfg.camera.rows,
                width: env_cfg.camera.cols,
                extras,
            },
            ..base
        }
    } else {
        SacConfig {
            obs_layout: ObsLayout::Flat,
            ..base
        }
    }
}

/// The trained low-level skills of one (or all — they are shared) agents.
#[derive(Debug)]
pub struct SkillLibrary {
    in_lane: SacAgent,
    lane_change: SacAgent,
    env_cfg: EnvConfig,
}

impl SkillLibrary {
    /// Creates an *untrained* library (useful for tests and for loading
    /// checkpoints into). The SAC config's `obs_layout` is derived per
    /// skill; pass `vision` to route the image through a CNN.
    pub fn untrained(env_cfg: EnvConfig, sac: SacConfig, seed: u64) -> Self {
        Self::untrained_with_vision(env_cfg, sac, false, seed)
    }

    /// [`SkillLibrary::untrained`] with an explicit encoder choice.
    pub fn untrained_with_vision(
        env_cfg: EnvConfig,
        sac: SacConfig,
        vision: bool,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let in_lane_obs = env_cfg.low_dim() + IN_LANE_TRAINED_OPTIONS.len();
        let lane_change_obs = env_cfg.low_dim();
        let in_lane_cfg =
            skill_sac_config(sac, &env_cfg, 2 + IN_LANE_TRAINED_OPTIONS.len(), vision);
        let lane_change_cfg = skill_sac_config(sac, &env_cfg, 2, vision);
        Self {
            in_lane: SacAgent::new(in_lane_obs, 2, in_lane_cfg, &mut rng),
            lane_change: SacAgent::new(lane_change_obs, 2, lane_change_cfg, &mut rng),
            env_cfg,
        }
    }

    /// Trains both skills in parallel single-vehicle environments
    /// (Algorithm 2 / Fig. 8), returning the library and the per-skill
    /// episode-reward curves (`skill/driving-in-lane`, `skill/lane-change`)
    /// plus the lane-change success indicator series
    /// (`skill/lane-change-success`).
    pub fn train(env_cfg: EnvConfig, cfg: SkillTrainingConfig, seed: u64) -> (Self, Recorder) {
        let kinds = [SkillKind::DrivingInLane, SkillKind::LaneChange];
        let mut results = run_parallel(2, |w| {
            train_one_skill(env_cfg, cfg, kinds[w], seed.wrapping_add(w as u64))
        });
        let (lc_agent, lc_curve, lc_success) = results.pop().expect("lane-change worker");
        let (il_agent, il_curve, _) = results.pop().expect("in-lane worker");
        let mut rec = Recorder::new();
        for v in il_curve {
            rec.push("skill/driving-in-lane", v);
        }
        for v in lc_curve {
            rec.push("skill/lane-change", v);
        }
        for v in lc_success {
            rec.push("skill/lane-change-success", v);
        }
        (
            Self {
                in_lane: il_agent,
                lane_change: lc_agent,
                env_cfg,
            },
            rec,
        )
    }

    /// The environment configuration the skills were built for.
    pub fn env_config(&self) -> &EnvConfig {
        &self.env_cfg
    }

    /// The driving-in-lane skill (serves slow-down / accelerate).
    pub fn in_lane_skill(&self) -> &SacAgent {
        &self.in_lane
    }

    /// The lane-change skill.
    pub fn lane_change_skill(&self) -> &SacAgent {
        &self.lane_change
    }

    /// The command executing `option` for one step.
    ///
    /// `target_d` is the lateral coordinate of the option's target lane
    /// center (only used by lane change). With `stochastic` the SAC
    /// policies sample; otherwise they act deterministically.
    pub fn command(
        &self,
        option: DrivingOption,
        obs: &Observation,
        state: &VehicleState,
        target_d: f32,
        rng: &mut StdRng,
        stochastic: bool,
    ) -> VehicleCommand {
        match option {
            DrivingOption::KeepLane => {
                // Keep lane preserves speed but still recenters gently so
                // small drifts do not accumulate into wall collisions.
                let track = self.env_cfg.track;
                let center = track.lane_center(state.lane(&track));
                let steer = (1.2 * (center - state.d) - 0.8 * state.heading).clamp(-0.1, 0.1);
                VehicleCommand::new(state.speed, steer)
            }
            DrivingOption::SlowDown | DrivingOption::Accelerate => {
                let mut input = obs.low_flat_vec();
                for o in IN_LANE_TRAINED_OPTIONS {
                    input.push(if o == option { 1.0 } else { 0.0 });
                }
                let a = self.in_lane.act(&input, rng, stochastic);
                let bounds = option.action_bounds().expect("in-lane options have bounds");
                let (linear, angular) = bounds.denormalize(a[0], a[1]);
                VehicleCommand::new(linear, angular)
            }
            DrivingOption::LaneChange => {
                let input = obs.low_flat_vec();
                let a = self.lane_change.act(&input, rng, stochastic);
                let bounds = DrivingOption::LaneChange
                    .action_bounds()
                    .expect("lane change has bounds");
                let (linear, magnitude) = bounds.denormalize(a[0], a[1]);
                let angular = resolve_lane_change_steering(state, target_d, magnitude);
                VehicleCommand::new(linear, angular)
            }
        }
    }

    /// All trainable parameters (in-lane skill then lane-change skill).
    pub fn parameters(&self) -> Vec<Parameter> {
        let mut p = self.in_lane.parameters();
        p.extend(self.lane_change.parameters());
        p
    }

    /// Saves both skills to a checkpoint file.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), CheckpointError> {
        save_params(path, &self.parameters())
    }

    /// Loads both skills from a checkpoint written by
    /// [`SkillLibrary::save`].
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] when the file does not match this
    /// library's architecture.
    pub fn load(&mut self, path: impl AsRef<std::path::Path>) -> Result<(), CheckpointError> {
        load_params(path, &self.parameters())
    }
}

fn train_one_skill(
    env_cfg: EnvConfig,
    cfg: SkillTrainingConfig,
    kind: SkillKind,
    seed: u64,
) -> (SacAgent, Vec<f32>, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut env = match kind {
        SkillKind::DrivingInLane => SkillEnv::driving_in_lane(env_cfg, seed),
        SkillKind::LaneChange => SkillEnv::lane_change(env_cfg, seed),
    };
    let sac = skill_sac_config(cfg.sac, &env_cfg, 2 + env.condition_dim(), cfg.vision);
    let mut agent = SacAgent::new(env.obs_dim(), env.action_dim(), sac, &mut rng);
    let mut rewards = Vec::with_capacity(cfg.episodes);
    let mut successes = Vec::with_capacity(cfg.episodes);
    for episode in 0..cfg.episodes {
        let mut obs = env.reset();
        let mut total = 0.0;
        {
            let _rollout = hero_rl::telemetry::span("skill_rollout");
            while !env.is_done() {
                let a = agent.act(&obs, &mut rng, true);
                let (next, r, done) = env.step([a[0], a[1]]);
                hero_rl::telemetry::counter_add("skill_env_steps", 1);
                // Stage-one shaped reward — the "intrinsic" skill signal,
                // as opposed to the cooperative reward of stage two.
                hero_rl::telemetry::observe("reward/intrinsic", r as f64);
                agent.observe(ContinuousTransition {
                    obs: obs.clone(),
                    action: a,
                    reward: r,
                    next_obs: next.clone(),
                    done,
                });
                obs = next;
                total += r;
            }
        }
        {
            let _update = hero_rl::telemetry::span("skill_update");
            for _ in 0..cfg.updates_per_episode {
                if agent.update(&mut rng).is_some() {
                    hero_rl::telemetry::counter_add("grad_updates", 1);
                }
            }
        }
        hero_rl::telemetry::counter_add("skill_episodes", 1);
        hero_rl::telemetry::progress(&format!("{kind:?} skill ep {}", episode + 1));
        rewards.push(total);
        successes.push(match env.result() {
            ManeuverResult::Success => 1.0,
            _ => 0.0,
        });
    }
    (agent, rewards, successes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_library_produces_bounded_commands() {
        let env_cfg = EnvConfig::default();
        let lib = SkillLibrary::untrained(env_cfg, SacConfig::default(), 0);
        let mut rng = StdRng::seed_from_u64(0);
        let state = VehicleState {
            s: 0.0,
            d: 0.2,
            heading: 0.0,
            speed: 0.1,
        };
        let obs = Observation {
            lidar: vec![1.0; env_cfg.lidar.beams],
            image: vec![0.0; env_cfg.camera.image_len()],
            speed_norm: 0.4,
            lane_norm: 0.0,
            lane_id: 0,
            speed: 0.1,
        };
        for option in DrivingOption::ALL {
            let cmd = lib.command(option, &obs, &state, 0.6, &mut rng, true);
            assert!(cmd.linear >= 0.0 && cmd.linear <= 0.25, "{option}: {cmd:?}");
            assert!(cmd.angular.abs() <= 0.3, "{option}: {cmd:?}");
            if let Some(b) = option.action_bounds() {
                assert!(cmd.linear >= b.linear.0 - 1e-5 && cmd.linear <= b.linear.1 + 1e-5);
            }
        }
        // Keep-lane preserves speed.
        let keep = lib.command(DrivingOption::KeepLane, &obs, &state, 0.2, &mut rng, false);
        assert_eq!(keep.linear, 0.1);
    }

    #[test]
    fn lane_change_command_steers_toward_target() {
        let env_cfg = EnvConfig::default();
        let lib = SkillLibrary::untrained(env_cfg, SacConfig::default(), 1);
        let mut rng = StdRng::seed_from_u64(1);
        let state = VehicleState {
            s: 0.0,
            d: 0.2,
            heading: 0.0,
            speed: 0.12,
        };
        let obs = Observation {
            lidar: vec![1.0; env_cfg.lidar.beams],
            image: vec![0.0; env_cfg.camera.image_len()],
            speed_norm: 0.5,
            lane_norm: 0.0,
            lane_id: 0,
            speed: 0.12,
        };
        let up = lib.command(DrivingOption::LaneChange, &obs, &state, 0.6, &mut rng, false);
        assert!(up.angular > 0.0, "target above: steer up, got {:?}", up);
        let down_state = VehicleState { d: 0.6, ..state };
        let down = lib.command(DrivingOption::LaneChange, &obs, &down_state, 0.2, &mut rng, false);
        assert!(down.angular < 0.0, "target below: steer down, got {:?}", down);
    }

    #[test]
    fn checkpoint_roundtrip() {
        let env_cfg = EnvConfig::default();
        let lib = SkillLibrary::untrained(env_cfg, SacConfig::default(), 2);
        let path = std::env::temp_dir().join(format!("hero_skills_{}.bin", std::process::id()));
        lib.save(&path).unwrap();
        let mut other = SkillLibrary::untrained(env_cfg, SacConfig::default(), 99);
        other.load(&path).unwrap();
        let (a, b) = (lib.parameters(), other.parameters());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(&*x.value(), &*y.value());
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn short_training_run_completes_and_records_curves() {
        let cfg = SkillTrainingConfig {
            episodes: 3,
            updates_per_episode: 1,
            vision: false,
            sac: SacConfig {
                hidden: 8,
                batch_size: 8,
                warmup: 8,
                ..SacConfig::default()
            },
        };
        let (_lib, rec) = SkillLibrary::train(EnvConfig::default(), cfg, 7);
        assert_eq!(rec.series("skill/driving-in-lane").unwrap().len(), 3);
        assert_eq!(rec.series("skill/lane-change").unwrap().len(), 3);
        assert_eq!(rec.series("skill/lane-change-success").unwrap().len(), 3);
    }

    #[test]
    fn vision_skill_training_runs_and_commands_are_bounded() {
        let cfg = SkillTrainingConfig {
            episodes: 2,
            updates_per_episode: 1,
            vision: true,
            sac: SacConfig {
                hidden: 8,
                batch_size: 4,
                warmup: 4,
                ..SacConfig::default()
            },
        };
        let env_cfg = EnvConfig::default();
        let (lib, rec) = SkillLibrary::train(env_cfg, cfg, 9);
        assert_eq!(rec.series("skill/driving-in-lane").unwrap().len(), 2);
        let mut rng = StdRng::seed_from_u64(0);
        let obs = Observation {
            lidar: vec![1.0; env_cfg.lidar.beams],
            image: vec![0.0; env_cfg.camera.image_len()],
            speed_norm: 0.4,
            lane_norm: 0.0,
            lane_id: 0,
            speed: 0.1,
        };
        let state = VehicleState {
            s: 0.0,
            d: 0.2,
            heading: 0.0,
            speed: 0.1,
        };
        let cmd = lib.command(DrivingOption::Accelerate, &obs, &state, 0.2, &mut rng, false);
        let b = DrivingOption::Accelerate.action_bounds().unwrap();
        assert!(cmd.linear >= b.linear.0 && cmd.linear <= b.linear.1);
    }

    #[test]
    fn vision_and_flat_checkpoints_are_incompatible() {
        let env_cfg = EnvConfig::default();
        let flat = SkillLibrary::untrained(env_cfg, SacConfig::default(), 0);
        let path =
            std::env::temp_dir().join(format!("hero_skill_mismatch_{}.bin", std::process::id()));
        flat.save(&path).unwrap();
        let mut vision =
            SkillLibrary::untrained_with_vision(env_cfg, SacConfig::default(), true, 0);
        assert!(vision.load(&path).is_err(), "architectures differ");
        std::fs::remove_file(path).ok();
    }
}

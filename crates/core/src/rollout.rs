//! The actor/learner rollout engine: environment stepping on dedicated
//! actor threads, learning on a single learner thread.
//!
//! Each actor owns a seeded [`BatchWorld`] shard and does nothing but
//! reset/step worlds on request; all decisions, replay ingestion, updates,
//! telemetry, and checkpoints happen on the learner thread. Messages flow
//! over bounded channels (backpressure, stall detection via
//! `recv_timeout`).
//!
//! Two modes, selected by [`RolloutOptions::batch_worlds`]:
//!
//! * **Serial** (`batch_worlds == 1`): one episode in flight at a time,
//!   hosted round-robin across actors. The logical environment RNG stream
//!   lives on the learner and is shipped with every `Reset`, so the run is
//!   **bit-identical to sequential [`crate::trainer::train_team`]** — same
//!   metric series, same telemetry totals, same checkpoint bytes — for any
//!   actor count. A stalled actor is detected, counted under
//!   `actor/stalled`, and its episode re-dispatched to a live actor.
//! * **Batched** (`batch_worlds > 1`): `actors × batch_worlds` world
//!   replicas (independent streams via
//!   [`hero_sim::env::replica_seed`]) run waves of episodes concurrently;
//!   policy forward passes for all deciding worlds are batched into single
//!   tiled matmuls ([`crate::agent::HeroAgent::batch_logits`]). Batched
//!   runs are self-reproducible (same seeds → same bits, and kill/resume
//!   is bit-identical via the checkpoint `workers` section) but not
//!   step-for-step equal to sequential training: matmul accumulation
//!   order differs across batch shapes and episodes interleave.
//!
//! Waves never cross a `kill@ep:N` or checkpoint boundary, so fault
//! injection and snapshot cadence behave exactly as in the sequential
//! loop.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crossbeam::channel;
use hero_faultplan::KillMode;
use hero_rl::metrics::Recorder;
use hero_rl::telemetry;
use hero_rl::telemetry::{CapturedEvent, FlightEventKind};
use hero_sim::batch::BatchWorld;
use hero_sim::env::{CooperativeWorld, EnvConfig, LaneChangeEnv, Observation, VehicleSpawn};
use hero_sim::track::Track;
use hero_sim::vehicle::{VehicleCommand, VehicleState};

use crate::checkpoint::{self, CheckpointStore, TrainerSnapshot, WorkerStates};
use crate::trainer::{
    restore_snapshot, CheckpointConfig, HeroTeam, TeamCursor, TrainOptions, TrainOutcome,
};

/// Knobs of the actor/learner rollout engine.
#[derive(Clone, Copy, Debug)]
pub struct RolloutOptions {
    /// Number of actor threads stepping environments.
    pub actors: usize,
    /// World replicas per actor. `1` selects serial mode (bit-identical to
    /// sequential training); `> 1` selects batched mode.
    pub batch_worlds: usize,
    /// Bounded-channel capacity per actor (raised to `batch_worlds` when
    /// smaller, so a full wave of resets never deadlocks).
    pub channel_capacity: usize,
    /// How long the learner waits on an actor before declaring it stalled.
    pub stall_timeout: Duration,
}

impl Default for RolloutOptions {
    fn default() -> Self {
        Self {
            actors: 1,
            batch_worlds: 1,
            channel_capacity: 4,
            stall_timeout: Duration::from_secs(30),
        }
    }
}

impl RolloutOptions {
    /// Whether these options ask for anything beyond the plain sequential
    /// loop (more than one actor thread or world replica).
    pub fn is_distributed(&self) -> bool {
        self.actors > 1 || self.batch_worlds > 1
    }
}

/// Per-vehicle episode-outcome flags shipped from actor to learner (what
/// the sequential loop reads off the environment after each step).
#[derive(Clone, Debug, Default)]
struct WorldFlags {
    collided: Vec<bool>,
    needs_merge: Vec<bool>,
    has_merged: Vec<bool>,
}

enum ToActor {
    /// Reset local world `world`, first seating its RNG stream at `rng`
    /// (the learner owns every stream; actors are stateless compute).
    Reset { world: usize, rng: Vec<u64> },
    /// Step the listed local worlds in one batched `step_worlds` call.
    Step {
        worlds: Vec<usize>,
        commands: Vec<Vec<VehicleCommand>>,
    },
}

struct WorldStepMsg {
    world: usize,
    observations: Vec<Observation>,
    states: Vec<VehicleState>,
    rewards: Vec<f32>,
    done: bool,
    mean_speed: f32,
    flags: WorldFlags,
}

enum FromActor {
    ResetDone {
        world: usize,
        observations: Vec<Observation>,
        states: Vec<VehicleState>,
        rng: Vec<u64>,
        flags: WorldFlags,
        events: Vec<CapturedEvent>,
    },
    StepDone {
        steps: Vec<WorldStepMsg>,
        events: Vec<CapturedEvent>,
    },
}

fn flags_of(shard: &BatchWorld, w: usize, n: usize) -> WorldFlags {
    WorldFlags {
        collided: (0..n).map(|i| shard.has_collided(w, i)).collect(),
        needs_merge: (0..n).map(|i| shard.needs_merge(w, i)).collect(),
        has_merged: (0..n).map(|i| shard.has_merged(w, i)).collect(),
    }
}

/// The body of one actor thread: build the world shard, then serve
/// reset/step requests until the command channel closes. Telemetry emitted
/// while serving a request is captured and shipped back for the learner to
/// replay in deterministic order; telemetry from shard construction is
/// captured and discarded (the learner already owns the canonical
/// environment).
#[allow(clippy::too_many_arguments)]
fn actor_loop(
    cfg: EnvConfig,
    spawns: Vec<VehicleSpawn>,
    seed: u64,
    worlds: usize,
    rx: channel::Receiver<ToActor>,
    tx: channel::Sender<FromActor>,
    capture: bool,
    stalled: bool,
    shutdown: &AtomicBool,
) {
    if stalled {
        // Injected fault: freeze before serving anything, but stay
        // responsive to shutdown so the scoped join cannot deadlock.
        while !shutdown.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(2));
        }
        return;
    }
    telemetry::begin_capture();
    let proto = LaneChangeEnv::new(cfg, spawns, seed);
    let mut shard = BatchWorld::replicate(&proto, worlds);
    let _ = telemetry::take_capture();
    let n = shard.num_vehicles();
    while let Ok(msg) = rx.recv() {
        if capture {
            telemetry::begin_capture();
        }
        let reply = match msg {
            ToActor::Reset { world, rng } => {
                shard.set_rng_state(world, &rng);
                let observations = shard.reset_world(world);
                FromActor::ResetDone {
                    world,
                    states: (0..n).map(|i| shard.vehicle_state(world, i)).collect(),
                    rng: shard.rng_state(world),
                    flags: flags_of(&shard, world, n),
                    observations,
                    events: Vec::new(),
                }
            }
            ToActor::Step { worlds, commands } => {
                let outs = shard.step_worlds(&worlds, &commands);
                let steps = worlds
                    .iter()
                    .zip(outs)
                    .map(|(&w, out)| WorldStepMsg {
                        world: w,
                        states: (0..n).map(|i| shard.vehicle_state(w, i)).collect(),
                        flags: flags_of(&shard, w, n),
                        observations: out.observations,
                        rewards: out.rewards,
                        done: out.done,
                        mean_speed: out.mean_speed,
                    })
                    .collect();
                FromActor::StepDone {
                    steps,
                    events: Vec::new(),
                }
            }
        };
        let events = if capture {
            telemetry::take_capture()
        } else {
            Vec::new()
        };
        let reply = match reply {
            FromActor::ResetDone {
                world,
                observations,
                states,
                rng,
                flags,
                ..
            } => FromActor::ResetDone {
                world,
                observations,
                states,
                rng,
                flags,
                events,
            },
            FromActor::StepDone { steps, .. } => FromActor::StepDone { steps, events },
        };
        if tx.send(reply).is_err() {
            break;
        }
    }
}

/// Pre-built metric names for the `live/` rollout plane, so the
/// per-step instrumentation sites don't allocate.
struct LiveNames {
    queue_now: Vec<String>,
    queue_depth: Vec<String>,
    blocked_send: Vec<String>,
    heartbeat: Vec<String>,
    util: Vec<String>,
}

impl LiveNames {
    fn new(actors: usize) -> Self {
        let per = |prefix: &str| -> Vec<String> {
            (0..actors).map(|a| format!("{prefix}/actor{a}")).collect()
        };
        Self {
            queue_now: per("live/queue_depth_now"),
            queue_depth: per("live/queue_depth"),
            blocked_send: per("live/blocked_send_us"),
            heartbeat: per("live/heartbeat_s"),
            util: per("live/actor_util"),
        }
    }
}

/// Learner-side state shared by the serial and batched loops.
struct Learner<'a> {
    team: &'a mut HeroTeam,
    rng: &'a mut StdRng,
    rec: &'a mut Recorder,
    cursors: &'a mut Vec<TeamCursor>,
    world_rng: &'a mut Vec<Vec<u64>>,
    step_counter: &'a mut usize,
    update_counter: &'a mut usize,
    store: &'a mut Option<CheckpointStore>,
    opts: &'a TrainOptions,
    ckpt: &'a CheckpointConfig,
    rollout: &'a RolloutOptions,
    track: Track,
    learners: Vec<usize>,
    n_vehicles: usize,
    to_actor: Vec<channel::Sender<ToActor>>,
    from_actor: Vec<channel::Receiver<FromActor>>,
    dead: Vec<bool>,
    start_episode: usize,
    // The `live/` observability plane: wall-clock process state feeding
    // the metrics exporter and `hero-top`. Never consulted by any
    // training decision, so it cannot perturb determinism.
    engine_start: Instant,
    outstanding: Vec<u64>,
    busy_us: Vec<u64>,
    wave_no: u64,
    pending_redispatch: Vec<usize>,
    names: LiveNames,
}

impl Learner<'_> {
    /// Honors a `kill@ep:N` fault exactly like the sequential loop.
    fn kill_check(&mut self, episode: usize, episodes_run: usize) -> Option<(bool, usize)> {
        if self.ckpt.fault_plan.should_kill(episode) {
            telemetry::counter_add("checkpoint/fault_kill", 1);
            telemetry::flight_event(FlightEventKind::KillInjected {
                episode: episode as u64,
            });
            telemetry::mark_faulted();
            let _ = telemetry::flush();
            match self.ckpt.kill_mode {
                KillMode::Exit => std::process::exit(137),
                KillMode::Return => return Some((false, episodes_run)),
            }
        }
        None
    }

    fn mark_stalled(&mut self, a: usize) {
        if !self.dead[a] {
            self.dead[a] = true;
            telemetry::counter_add("actor/stalled", 1);
            telemetry::flight_event(FlightEventKind::StallDetected { actor: a as u64 });
            // A stall is a fault: leave the flight recorder behind for
            // post-mortem even when the surviving actors finish the run.
            telemetry::mark_faulted();
            self.pending_redispatch.push(a);
            telemetry::progress(&format!("actor {a} stalled; re-dispatching its work"));
        }
    }

    fn live_actors(&self) -> usize {
        self.dead.iter().filter(|d| !**d).count()
    }

    /// Refreshes the aggregate queue/actor gauges. Only called from
    /// instrumentation sites that already checked a sink is active.
    fn refresh_live_gauges(&self) {
        let mut total = 0u64;
        let mut busy = 0usize;
        for (a, &o) in self.outstanding.iter().enumerate() {
            telemetry::gauge_set(&self.names.queue_now[a], o as f64);
            if !self.dead[a] {
                total += o;
                if o > 0 {
                    busy += 1;
                }
            }
        }
        telemetry::gauge_set("live/queue_depth_total", total as f64);
        telemetry::gauge_set("live/actors_busy", busy as f64);
        telemetry::gauge_set("live/actors_total", self.live_actors() as f64);
    }

    /// Sends a request to actor `a`, timing how long the bounded channel
    /// blocked and maintaining the queue-depth plane. Returns `false` on
    /// disconnect (caller decides whether that stalls the actor).
    fn send_to(&mut self, a: usize, msg: ToActor) -> bool {
        if telemetry::disabled() {
            return self.to_actor[a].send(msg).is_ok();
        }
        let t0 = Instant::now();
        let ok = self.to_actor[a].send(msg).is_ok();
        telemetry::live_observe(
            &self.names.blocked_send[a],
            t0.elapsed().as_secs_f64() * 1e6,
        );
        if ok {
            self.outstanding[a] += 1;
            telemetry::live_observe(&self.names.queue_depth[a], self.outstanding[a] as f64);
        }
        self.refresh_live_gauges();
        ok
    }

    /// Receives one message from actor `a`, marking it stalled (and
    /// returning `None`) on timeout or disconnect.
    fn recv(&mut self, a: usize) -> Option<FromActor> {
        if telemetry::disabled() {
            return match self.from_actor[a].recv_timeout(self.rollout.stall_timeout) {
                Ok(m) => Some(m),
                Err(_) => {
                    self.mark_stalled(a);
                    None
                }
            };
        }
        let t0 = Instant::now();
        match self.from_actor[a].recv_timeout(self.rollout.stall_timeout) {
            Ok(m) => {
                // The learner's wait for this reply approximates the
                // actor's busy time (request/reply protocol); its ratio
                // against engine wall-clock is the utilization gauge.
                self.busy_us[a] += t0.elapsed().as_micros() as u64;
                let elapsed_us = self.engine_start.elapsed().as_micros().max(1) as u64;
                telemetry::gauge_set(
                    &self.names.util[a],
                    (self.busy_us[a] as f64 / elapsed_us as f64).min(1.0),
                );
                telemetry::gauge_set(
                    &self.names.heartbeat[a],
                    telemetry::elapsed_s().unwrap_or_default(),
                );
                self.outstanding[a] = self.outstanding[a].saturating_sub(1);
                self.refresh_live_gauges();
                Some(m)
            }
            Err(_) => {
                self.mark_stalled(a);
                None
            }
        }
    }

    fn mean_learner_reward(&self, rewards: &[f32]) -> f32 {
        self.learners.iter().map(|&v| rewards[v]).sum::<f32>() / self.learners.len() as f32
    }

    /// The per-step update cadence, identical to the sequential loop
    /// (call after incrementing the step counter).
    fn run_update_cadence(&mut self) {
        if *self.step_counter % self.opts.update_every == 0 {
            let _update = telemetry::span("update");
            let live_t0 = (!telemetry::disabled()).then(Instant::now);
            if self.ckpt.fault_plan.nan_grad_at(*self.update_counter) {
                if let Some(agent) = self.team.agents_mut().first_mut() {
                    agent.poison_gradients();
                }
            }
            *self.update_counter += 1;
            if let Some((c, a)) = self.team.update(self.rng) {
                telemetry::counter_add("grad_updates", 1);
                telemetry::observe("critic_loss", c as f64);
                telemetry::observe("actor_loss", a as f64);
                self.rec.push("critic_loss", c);
                self.rec.push("actor_loss", a);
            }
            if let Some(t0) = live_t0 {
                telemetry::live_observe(
                    "live/learner_update_us",
                    t0.elapsed().as_secs_f64() * 1e6,
                );
            }
        }
    }

    fn save_checkpoint(&mut self, next_episode: usize, workers: Option<WorkerStates>) {
        self.team.absorb_cursor(&self.cursors[0]);
        let snap = TrainerSnapshot {
            next_episode,
            step_counter: *self.step_counter,
            update_counter: *self.update_counter,
            trainer_rng: self.rng.state(),
            env_rng: self.world_rng[0].clone(),
            recorder: self.rec.clone(),
            telemetry: telemetry::export_state(),
            workers,
            kernel_mode: hero_autograd::kernel_mode(),
            team_sections: self.team.save_state(),
        };
        if let Some(store) = self.store.as_mut() {
            store.save(&snap.to_sections(), &self.ckpt.fault_plan);
        }
    }

    /// Serial mode: one episode at a time, round-robin over live actors,
    /// single learner-owned environment stream. Bit-identical to
    /// [`crate::trainer::train_team_checkpointed`].
    fn serial_run(&mut self) -> (bool, usize) {
        let actors = self.to_actor.len();
        let mut episodes_run = 0usize;
        for episode in self.start_episode..self.opts.episodes {
            if let Some(out) = self.kill_check(episode, episodes_run) {
                return out;
            }
            // Serial mode: one episode == one wave of one world.
            let wave_t0 = Instant::now();
            telemetry::flight_event(FlightEventKind::WaveDispatched {
                wave: episode as u64,
                worlds: 1,
            });
            // Host the episode on the round-robin actor, skipping (and
            // re-dispatching past) stalled ones. Nothing of the episode
            // has been ingested until ResetDone arrives, so retrying the
            // reset on another actor is side-effect free.
            let mut hosted = None;
            for offset in 0..actors {
                let a = (episode + offset) % actors;
                if self.dead[a] {
                    continue;
                }
                let msg = ToActor::Reset {
                    world: 0,
                    rng: self.world_rng[0].clone(),
                };
                if !self.send_to(a, msg) {
                    self.mark_stalled(a);
                    continue;
                }
                match self.recv(a) {
                    Some(FromActor::ResetDone {
                        observations,
                        states,
                        rng,
                        flags,
                        events,
                        ..
                    }) => {
                        telemetry::replay(events);
                        self.world_rng[0] = rng;
                        if offset > 0 {
                            // The round-robin host was dead or stalled:
                            // this actor took the episode over.
                            telemetry::flight_event(FlightEventKind::Redispatched {
                                actor: a as u64,
                                wave: episode as u64,
                            });
                        }
                        hosted = Some((observations, states, flags, a));
                        break;
                    }
                    _ => continue, // stalled: recv already marked it
                }
            }
            self.pending_redispatch.clear();
            let Some((mut obs, mut states, mut flags, actor)) = hosted else {
                return (false, episodes_run); // every actor stalled
            };
            self.cursors[0].begin_episode();
            let mut ep_reward = 0.0f32;
            let mut ep_speed = 0.0f32;
            let mut steps = 0usize;
            let mut done = false;
            while !done {
                let rollout_span = telemetry::span("rollout");
                let commands = self.team.decide_in(
                    &mut self.cursors[0],
                    &self.track,
                    &self.learners,
                    self.n_vehicles,
                    &states,
                    &obs,
                    self.rng,
                    true,
                );
                let msg = ToActor::Step {
                    worlds: vec![0],
                    commands: vec![commands],
                };
                if !self.send_to(actor, msg) {
                    self.mark_stalled(actor);
                    return (false, episodes_run);
                }
                let Some(FromActor::StepDone {
                    steps: mut step_msgs,
                    events,
                }) = self.recv(actor)
                else {
                    // A mid-episode stall cannot be replayed safely (half
                    // the step stream is already ingested): surface an
                    // incomplete run instead of deadlocking.
                    return (false, episodes_run);
                };
                telemetry::replay(events);
                let msg = step_msgs.pop().expect("exactly one world stepped");
                self.team.record_in(
                    &mut self.cursors[0],
                    &self.track,
                    &self.learners,
                    &msg.states,
                    &obs,
                    &msg.rewards,
                    &msg.observations,
                    msg.done,
                );
                drop(rollout_span);
                ep_reward += self.mean_learner_reward(&msg.rewards);
                ep_speed += msg.mean_speed;
                steps += 1;
                *self.step_counter += 1;
                self.run_update_cadence();
                obs = msg.observations;
                states = msg.states;
                flags = msg.flags;
                done = msg.done;
            }
            telemetry::counter_add("episodes", 1);
            telemetry::flight_event(FlightEventKind::WaveCompleted {
                wave: episode as u64,
                episodes: 1,
            });
            if !telemetry::disabled() {
                telemetry::live_observe("live/wave_us", wave_t0.elapsed().as_secs_f64() * 1e6);
            }
            telemetry::progress(&format!("ep {}", episode + 1));
            record_episode_flags(self.rec, &self.learners, &flags, ep_reward, ep_speed, steps);
            episodes_run += 1;
            if self.store.is_some() && self.ckpt.every > 0 && (episode + 1) % self.ckpt.every == 0
            {
                self.save_checkpoint(episode + 1, None);
            }
        }
        (true, episodes_run)
    }

    /// Batched mode: waves of episodes across all world replicas, with
    /// per-wave resets, batched policy forwards, and batched world steps.
    fn batched_run(&mut self) -> (bool, usize) {
        let actors = self.to_actor.len();
        let per_actor = self.rollout.batch_worlds;
        let total = actors * per_actor;
        let n_agents = self.learners.len();
        let mut episodes_run = 0usize;
        let mut completed_total = self.start_episode;

        let mut obs: Vec<Vec<Observation>> = vec![Vec::new(); total];
        let mut states: Vec<Vec<VehicleState>> = vec![Vec::new(); total];
        let mut flags: Vec<WorldFlags> = vec![WorldFlags::default(); total];

        while completed_total < self.opts.episodes {
            if let Some(out) = self.kill_check(completed_total, episodes_run) {
                return out;
            }
            if self.live_actors() == 0 {
                return (false, episodes_run);
            }
            // Wave size: every live world runs one episode, capped so the
            // wave never crosses the remaining-episode count, a scheduled
            // kill, or a checkpoint boundary.
            let live_worlds: Vec<usize> =
                (0..total).filter(|g| !self.dead[g / per_actor]).collect();
            let mut wave = live_worlds.len().min(self.opts.episodes - completed_total);
            if let Some(k) = self.ckpt.fault_plan.kill_episode() {
                if k > completed_total {
                    wave = wave.min(k - completed_total);
                }
            }
            if self.ckpt.every > 0 {
                wave = wave.min(self.ckpt.every - completed_total % self.ckpt.every);
            }
            let assigned: Vec<usize> = live_worlds.into_iter().take(wave).collect();

            let wave_no = self.wave_no;
            self.wave_no += 1;
            let wave_t0 = Instant::now();
            telemetry::flight_event(FlightEventKind::WaveDispatched {
                wave: wave_no,
                worlds: assigned.len() as u64,
            });
            // Worlds stranded on previously stalled actors are folded back
            // into this wave's live assignment.
            if !assigned.is_empty() {
                for _stalled in std::mem::take(&mut self.pending_redispatch) {
                    telemetry::flight_event(FlightEventKind::Redispatched {
                        actor: (assigned[0] / per_actor) as u64,
                        wave: wave_no,
                    });
                }
            }

            // Reset the wave's worlds (grouped per actor, received in
            // actor order — deterministic regardless of thread timing).
            let mut sent = vec![0usize; actors];
            for &g in &assigned {
                let a = g / per_actor;
                if self.dead[a] {
                    continue;
                }
                let msg = ToActor::Reset {
                    world: g % per_actor,
                    rng: self.world_rng[g].clone(),
                };
                if !self.send_to(a, msg) {
                    self.mark_stalled(a);
                } else {
                    sent[a] += 1;
                }
            }
            let mut active: Vec<usize> = Vec::new();
            for (a, &count) in sent.iter().enumerate() {
                for _ in 0..count {
                    if self.dead[a] {
                        break;
                    }
                    match self.recv(a) {
                        Some(FromActor::ResetDone {
                            world,
                            observations,
                            states: st,
                            rng,
                            flags: fl,
                            events,
                        }) => {
                            telemetry::replay(events);
                            let g = a * per_actor + world;
                            self.world_rng[g] = rng;
                            obs[g] = observations;
                            states[g] = st;
                            flags[g] = fl;
                            self.cursors[g].begin_episode();
                            active.push(g);
                        }
                        _ => break, // recv marked the actor stalled
                    }
                }
            }
            if active.is_empty() {
                continue; // all reset targets stalled; retry on live actors
            }

            let mut ep_reward = vec![0.0f32; total];
            let mut ep_speed = vec![0.0f32; total];
            let mut ep_steps = vec![0usize; total];
            let mut running = active.clone();
            while !running.is_empty() {
                // Phase B: decide for every running world (world order).
                // Policy forwards for all worlds still selecting an option
                // are batched per agent into one matmul; the RNG draws
                // stay strictly in world order.
                let mut msgs: Vec<Option<WorldStepMsg>> = (0..total).map(|_| None).collect();
                {
                    let _rollout_span = telemetry::span("rollout");
                    let mut logits: Vec<Vec<Option<Vec<f32>>>> =
                        vec![vec![None; n_agents]; running.len()];
                    if running.len() > 1 {
                        for k in 0..n_agents {
                            let v = self.learners[k];
                            let sel: Vec<usize> = running
                                .iter()
                                .enumerate()
                                .filter(|(_, &g)| {
                                    self.cursors[g].agents()[k].current_option().is_none()
                                })
                                .map(|(pos, _)| pos)
                                .collect();
                            if sel.len() > 1 {
                                let rows_owned: Vec<Vec<f32>> = sel
                                    .iter()
                                    .map(|&pos| obs[running[pos]][v].high_vec())
                                    .collect();
                                let rows: Vec<&[f32]> =
                                    rows_owned.iter().map(|r| r.as_slice()).collect();
                                let batched = self.team.agents()[k].batch_logits(&rows);
                                for (i, &pos) in sel.iter().enumerate() {
                                    logits[pos][k] = Some(batched[i].clone());
                                }
                            }
                        }
                    }
                    let mut groups: Vec<(Vec<usize>, Vec<Vec<VehicleCommand>>)> =
                        vec![(Vec::new(), Vec::new()); actors];
                    for (pos, &g) in running.iter().enumerate() {
                        let commands = self.team.decide_in_with_logits(
                            &mut self.cursors[g],
                            &self.track,
                            &self.learners,
                            self.n_vehicles,
                            &states[g],
                            &obs[g],
                            &logits[pos],
                            self.rng,
                            true,
                        );
                        let a = g / per_actor;
                        groups[a].0.push(g % per_actor);
                        groups[a].1.push(commands);
                    }
                    for (a, (worlds, commands)) in groups.into_iter().enumerate() {
                        if worlds.is_empty() {
                            continue;
                        }
                        if !self.send_to(a, ToActor::Step { worlds, commands }) {
                            self.mark_stalled(a);
                            return (false, episodes_run);
                        }
                    }
                    for a in 0..actors {
                        if !running.iter().any(|&g| g / per_actor == a) {
                            continue;
                        }
                        let Some(FromActor::StepDone { steps, events }) = self.recv(a) else {
                            // Mid-episode stall: half-ingested episodes
                            // cannot be replayed — fail the run cleanly.
                            return (false, episodes_run);
                        };
                        telemetry::replay(events);
                        for m in steps {
                            let g = a * per_actor + m.world;
                            msgs[g] = Some(m);
                        }
                    }
                }

                // Phase A: ingest results in global world order.
                let mut still = Vec::new();
                for &g in &running {
                    let msg = msgs[g].take().expect("actor stepped this world");
                    self.team.record_in(
                        &mut self.cursors[g],
                        &self.track,
                        &self.learners,
                        &msg.states,
                        &obs[g],
                        &msg.rewards,
                        &msg.observations,
                        msg.done,
                    );
                    ep_reward[g] += self.mean_learner_reward(&msg.rewards);
                    ep_speed[g] += msg.mean_speed;
                    ep_steps[g] += 1;
                    *self.step_counter += 1;
                    self.run_update_cadence();
                    obs[g] = msg.observations;
                    states[g] = msg.states;
                    flags[g] = msg.flags;
                    if msg.done {
                        telemetry::counter_add("episodes", 1);
                        telemetry::progress(&format!("ep {}", completed_total + 1));
                        record_episode_flags(
                            self.rec,
                            &self.learners,
                            &flags[g],
                            ep_reward[g],
                            ep_speed[g],
                            ep_steps[g],
                        );
                        completed_total += 1;
                        episodes_run += 1;
                    } else {
                        still.push(g);
                    }
                }
                running = still;
            }
            telemetry::flight_event(FlightEventKind::WaveCompleted {
                wave: wave_no,
                episodes: active.len() as u64,
            });
            if !telemetry::disabled() {
                telemetry::live_observe("live/wave_us", wave_t0.elapsed().as_secs_f64() * 1e6);
            }

            if self.store.is_some()
                && self.ckpt.every > 0
                && completed_total % self.ckpt.every == 0
            {
                let workers = WorkerStates {
                    rngs: self.world_rng.clone(),
                    last_options: self
                        .cursors
                        .iter()
                        .map(|c| c.last_options().to_vec())
                        .collect(),
                };
                self.save_checkpoint(completed_total, Some(workers));
            }
        }
        (true, episodes_run)
    }
}

fn record_episode_flags(
    rec: &mut Recorder,
    learners: &[usize],
    flags: &WorldFlags,
    ep_reward: f32,
    ep_speed: f32,
    steps: usize,
) {
    rec.push("reward", ep_reward / steps.max(1) as f32);
    rec.push(
        "collision",
        if learners.iter().any(|&v| flags.collided[v]) {
            1.0
        } else {
            0.0
        },
    );
    let candidates: Vec<usize> = learners
        .iter()
        .copied()
        .filter(|&v| flags.needs_merge[v])
        .collect();
    if !candidates.is_empty() {
        let merged = candidates.iter().filter(|&&v| flags.has_merged[v]).count();
        rec.push("success", merged as f32 / candidates.len() as f32);
    }
    rec.push("mean_speed", ep_speed / steps.max(1) as f32);
}

/// [`crate::trainer::train_team_checkpointed`] with rollout split across
/// actor threads (see the module docs for the serial/batched contract).
///
/// After training, `env`'s RNG stream is advanced to world 0's position
/// and the team's joint last-options vector reflects world 0's cursor, so
/// downstream evaluation behaves exactly as after a sequential run.
pub fn train_team_actor_learner(
    team: &mut HeroTeam,
    env: &mut LaneChangeEnv,
    opts: &TrainOptions,
    ckpt: &CheckpointConfig,
    rollout: &RolloutOptions,
) -> TrainOutcome {
    assert!(rollout.actors >= 1, "need at least one actor thread");
    assert!(rollout.batch_worlds >= 1, "need at least one world per actor");
    let actors = rollout.actors;
    let per_actor = rollout.batch_worlds;
    let serial = per_actor == 1;
    let total_worlds = if serial { 1 } else { actors * per_actor };

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut rec = Recorder::new();
    let mut step_counter = 0usize;
    let mut update_counter = 0usize;
    let mut start_episode = 0usize;
    let mut restored_workers: Option<WorkerStates> = None;

    if ckpt.resume {
        if let Some(dir) = &ckpt.dir {
            match checkpoint::load_latest(dir) {
                Ok(Some(loaded)) => {
                    match TrainerSnapshot::from_sections(&loaded.sections)
                        .and_then(|snap| snap.verify_kernel_mode().map(|()| snap))
                        .and_then(|snap| restore_snapshot(team, env, &snap).map(|()| snap))
                    {
                        Ok(snap) => {
                            telemetry::counter_add("checkpoint/loaded", 1);
                            telemetry::flight_event(FlightEventKind::CheckpointLoaded {
                                index: loaded.index,
                            });
                            telemetry::counter_add(
                                "checkpoint/corrupt_skipped",
                                loaded.corrupt_skipped as u64,
                            );
                            if loaded.corrupt_skipped > 0 {
                                telemetry::counter_add("checkpoint/fallback", 1);
                            }
                            rng = StdRng::from_state(snap.trainer_rng);
                            step_counter = snap.step_counter;
                            update_counter = snap.update_counter;
                            start_episode = snap.next_episode;
                            restored_workers = snap.workers.clone();
                            rec = snap.recorder;
                        }
                        Err(e @ hero_autograd::CheckpointError::KernelModeMismatch { .. }) => {
                            // See trainer::train_team_checkpointed: a
                            // cross-mode resume must fail loudly, not fall
                            // back to a fresh run.
                            telemetry::progress(&format!("refusing to resume: {e}"));
                            let _ = telemetry::flush();
                            panic!("refusing to resume: {e}");
                        }
                        Err(e) => {
                            telemetry::counter_add("checkpoint/corrupt_skipped", 1);
                            telemetry::progress(&format!("resume failed, starting fresh: {e}"));
                        }
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    telemetry::progress(&format!("checkpoint dir unreadable, starting fresh: {e}"));
                }
            }
        }
    }

    let mut store = if ckpt.every > 0 {
        ckpt.dir
            .as_ref()
            .and_then(|dir| CheckpointStore::open(dir, ckpt.retain).ok())
    } else {
        None
    };

    // The learner owns every world's environment RNG stream; world 0 is
    // the canonical env's own stream (so serial mode continues it
    // exactly), worlds g > 0 get independent replica streams. Replica
    // construction senses each world once purely to read its RNG stream;
    // capture and discard that telemetry, because a resumed run imports
    // the checkpoint's totals (which already counted the original
    // construction) and then rebuilds the replicas again — without the
    // discard its sensor counters would exceed an uninterrupted run's.
    telemetry::begin_capture();
    let mut world_rng: Vec<Vec<u64>> = (0..total_worlds)
        .map(|g| {
            if g == 0 {
                env.rng_state()
            } else {
                env.replica(g).rng_state()
            }
        })
        .collect();
    let _ = telemetry::take_capture();
    let mut cursors: Vec<TeamCursor> = (0..total_worlds).map(|_| team.new_cursor()).collect();
    if let Some(w) = &restored_workers {
        if w.rngs.len() == total_worlds {
            for g in 0..total_worlds {
                world_rng[g].clone_from(&w.rngs[g]);
                cursors[g].set_last_options(w.last_options[g].clone());
            }
        } else {
            telemetry::progress(&format!(
                "checkpoint has {} worker streams, run has {}; extra worlds start fresh",
                w.rngs.len(),
                total_worlds
            ));
        }
    }

    let track = env.config().track;
    let learners = env.learner_indices();
    let n_vehicles = env.num_vehicles();
    let cap = rollout.channel_capacity.max(per_actor).max(1);
    let capture = telemetry::is_enabled();
    let shutdown = AtomicBool::new(false);
    let env_cfg = *env.config();
    let spawns: Vec<VehicleSpawn> = env.spawns().to_vec();
    let proto_seed = env.seed();

    let (completed, episodes_run) = crossbeam::thread::scope(|s| {
        let mut to_actor = Vec::with_capacity(actors);
        let mut from_actor = Vec::with_capacity(actors);
        for a in 0..actors {
            let (tx_cmd, rx_cmd) = channel::bounded::<ToActor>(cap);
            let (tx_res, rx_res) = channel::bounded::<FromActor>(cap);
            let stalled = ckpt.fault_plan.stall_actor(a);
            let spawns = spawns.clone();
            let shutdown = &shutdown;
            s.spawn(move || {
                actor_loop(
                    env_cfg, spawns, proto_seed, per_actor, rx_cmd, tx_res, capture, stalled,
                    shutdown,
                )
            });
            to_actor.push(tx_cmd);
            from_actor.push(rx_res);
        }
        let mut learner = Learner {
            team,
            rng: &mut rng,
            rec: &mut rec,
            cursors: &mut cursors,
            world_rng: &mut world_rng,
            step_counter: &mut step_counter,
            update_counter: &mut update_counter,
            store: &mut store,
            opts,
            ckpt,
            rollout,
            track,
            learners,
            n_vehicles,
            to_actor,
            from_actor,
            dead: vec![false; actors],
            start_episode,
            engine_start: Instant::now(),
            outstanding: vec![0; actors],
            busy_us: vec![0; actors],
            wave_no: 0,
            pending_redispatch: Vec::new(),
            names: LiveNames::new(actors),
        };
        let result = if serial {
            learner.serial_run()
        } else {
            learner.batched_run()
        };
        // Wake any stalled (sleeping) actors and close the command
        // channels so every actor thread exits before the scope joins.
        drop(learner);
        shutdown.store(true, Ordering::Relaxed);
        result
    });

    env.set_rng_state(&world_rng[0]);
    team.absorb_cursor(&cursors[0]);
    if !completed {
        // Incomplete runs dump the flight recorder on the next flush
        // (stalls and kills already marked themselves; this covers every
        // other early-return path).
        telemetry::mark_faulted();
    }
    TrainOutcome {
        recorder: rec,
        completed,
        episodes_run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use hero_baselines::sac::SacConfig;
    use hero_rl::metrics::Recorder;
    use hero_sim::env::EnvConfig;
    use hero_sim::scenario;

    use crate::config::HeroConfig;
    use crate::skills::SkillLibrary;
    use crate::trainer::train_team;

    fn fixture(n: usize, env_seed: u64) -> (HeroTeam, LaneChangeEnv) {
        let env_cfg = EnvConfig {
            max_steps: 6,
            ..EnvConfig::default()
        };
        let env = scenario::congestion(env_cfg, env_seed);
        let skills = Arc::new(SkillLibrary::untrained(
            env_cfg,
            SacConfig {
                hidden: 8,
                ..SacConfig::default()
            },
            0,
        ));
        let cfg = HeroConfig {
            hidden: 8,
            batch_size: 8,
            warmup: 8,
            ..HeroConfig::default()
        };
        (HeroTeam::new(n, env_cfg.high_dim(), skills, cfg, 1), env)
    }

    fn series_bits(rec: &Recorder, name: &str) -> Vec<u32> {
        rec.series(name)
            .map(|s| s.iter().map(|v| v.to_bits()).collect())
            .unwrap_or_default()
    }

    #[test]
    fn one_actor_serial_matches_sequential_bitwise() {
        let opts = TrainOptions {
            episodes: 3,
            update_every: 2,
            seed: 9,
        };
        let (mut team_a, mut env_a) = fixture(3, 4);
        let rec_a = train_team(&mut team_a, &mut env_a, &opts);
        let (mut team_b, mut env_b) = fixture(3, 4);
        let out = train_team_actor_learner(
            &mut team_b,
            &mut env_b,
            &opts,
            &CheckpointConfig::default(),
            &RolloutOptions::default(),
        );
        assert!(out.completed);
        assert_eq!(out.episodes_run, 3);
        for name in ["reward", "collision", "mean_speed", "critic_loss"] {
            assert_eq!(
                series_bits(&rec_a, name),
                series_bits(&out.recorder, name),
                "series `{name}` diverged from sequential"
            );
        }
        // The env stream advanced identically, so downstream evaluation
        // stays aligned too.
        assert_eq!(env_a.rng_state(), env_b.rng_state());
    }

    #[test]
    fn batched_mode_is_reproducible_run_to_run() {
        let opts = TrainOptions {
            episodes: 5,
            update_every: 2,
            seed: 3,
        };
        let rollout = RolloutOptions {
            actors: 2,
            batch_worlds: 2,
            ..RolloutOptions::default()
        };
        let run = || {
            let (mut team, mut env) = fixture(3, 11);
            train_team_actor_learner(
                &mut team,
                &mut env,
                &opts,
                &CheckpointConfig::default(),
                &rollout,
            )
        };
        let a = run();
        let b = run();
        assert!(a.completed && b.completed);
        assert_eq!(a.episodes_run, 5);
        for name in ["reward", "collision", "mean_speed", "critic_loss"] {
            assert_eq!(
                series_bits(&a.recorder, name),
                series_bits(&b.recorder, name),
                "series `{name}` not reproducible"
            );
        }
    }
}

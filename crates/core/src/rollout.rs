//! The actor/learner rollout engine: environment stepping on dedicated
//! actor threads, learning on a single learner thread.
//!
//! Each actor owns a seeded [`BatchWorld`] shard and does nothing but
//! reset/step worlds on request; all decisions, replay ingestion, updates,
//! telemetry, and checkpoints happen on the learner thread. Messages flow
//! over bounded channels (backpressure, stall detection via
//! `recv_timeout`).
//!
//! Two modes, selected by [`RolloutOptions::batch_worlds`]:
//!
//! * **Serial** (`batch_worlds == 1`): one episode in flight at a time,
//!   hosted round-robin across actors. The logical environment RNG stream
//!   lives on the learner and is shipped with every `Reset`, so the run is
//!   **bit-identical to sequential [`crate::trainer::train_team`]** — same
//!   metric series, same telemetry totals, same checkpoint bytes — for any
//!   actor count. A stalled actor is detected, counted under
//!   `actor/stalled`, and its episode re-dispatched to a live actor.
//! * **Batched** (`batch_worlds > 1`): `actors × batch_worlds` world
//!   replicas (independent streams via
//!   [`hero_sim::env::replica_seed`]) run waves of episodes concurrently;
//!   policy forward passes for all deciding worlds are batched into single
//!   tiled matmuls ([`crate::agent::HeroAgent::batch_logits`]). Batched
//!   runs are self-reproducible (same seeds → same bits, and kill/resume
//!   is bit-identical via the checkpoint `workers` section) but not
//!   step-for-step equal to sequential training: matmul accumulation
//!   order differs across batch shapes and episodes interleave.
//!
//! Waves never cross a `kill@ep:N` or checkpoint boundary, so fault
//! injection and snapshot cadence behave exactly as in the sequential
//! loop.
//!
//! ## Supervision
//!
//! The learner doubles as a supervisor over the actor fleet. Each actor
//! slot keeps its thread's [`JoinHandle`], so a failure is classified at
//! detection time: a `recv_timeout` **timeout** is a stall
//! (`actor/stalled`), a **disconnect** means the thread exited — joining
//! the handle harvests the panic payload (`actor/panicked`). Failed slots
//! climb an escalation ladder:
//!
//! 1. **Respawn** — while `respawns_used < max_respawns`, the slot gets a
//!    fresh thread, shard, and channels after a deterministic exponential
//!    backoff (`respawn_backoff_ms << respawns_used`, capped). Because the
//!    learner owns every world's RNG stream, each episode's start stream,
//!    and the per-episode command log, a respawned shard is rebuilt
//!    bit-identically: reset with the episode-start stream, replay the
//!    logged commands (discarding already-ingested replies and telemetry),
//!    and ingest only the missing reply. Counted under `actor/respawned`.
//! 2. **Degrade** — a slot that exhausts its budget is retired for good
//!    (`supervisor/degraded`); the run continues on fewer actors, which in
//!    serial mode cannot perturb a single bit of the output.
//! 3. **Abort** — when no live actor remains, the learner writes an
//!    emergency checkpoint if it is at a clean episode boundary (mid-episode
//!    state is half-ingested and would poison a resume —
//!    `supervisor/emergency_skipped`), then fails typed with
//!    [`TrainError::FleetLost`] instead of deadlocking or returning a
//!    silent partial run.
//!
//! Fault-plan actor faults (`stall@actor:N`, `panic@actor:N`,
//! `slow@actor:N:MS`) apply to generation 0 of a slot only, so a chaos
//! run's respawned fleet is healthy and the final series, counter totals
//! (ignoring `actor/` and `supervisor/`), and checkpoint bytes match a
//! fault-free twin.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crossbeam::channel;
use hero_faultplan::KillMode;
use hero_rl::metrics::Recorder;
use hero_rl::telemetry;
use hero_rl::telemetry::{CapturedEvent, FlightEventKind};
use hero_sim::batch::BatchWorld;
use hero_sim::env::{CooperativeWorld, EnvConfig, LaneChangeEnv, Observation, VehicleSpawn};
use hero_sim::track::Track;
use hero_sim::vehicle::{VehicleCommand, VehicleState};

use crate::checkpoint::{self, CheckpointStore, TrainerSnapshot, WorkerStates};
use crate::trainer::{
    restore_snapshot, CheckpointConfig, HeroTeam, TeamCursor, TrainError, TrainOptions,
    TrainOutcome,
};

/// Knobs of the actor/learner rollout engine.
#[derive(Clone, Copy, Debug)]
pub struct RolloutOptions {
    /// Number of actor threads stepping environments.
    pub actors: usize,
    /// World replicas per actor. `1` selects serial mode (bit-identical to
    /// sequential training); `> 1` selects batched mode.
    pub batch_worlds: usize,
    /// Bounded-channel capacity per actor (raised to `batch_worlds` when
    /// smaller, so a full wave of resets never deadlocks).
    pub channel_capacity: usize,
    /// How long the learner waits on an actor before declaring it stalled.
    pub stall_timeout: Duration,
    /// How many times the supervisor respawns a failed actor slot before
    /// retiring it permanently (the escalation ladder's first rung).
    pub max_respawns: usize,
    /// Base of the deterministic exponential respawn backoff
    /// (`respawn_backoff_ms << respawns_used`, capped at 4096 ms). Zero
    /// disables the sleep entirely; the schedule is wall-clock only and
    /// never consulted by any training decision.
    pub respawn_backoff_ms: u64,
}

impl Default for RolloutOptions {
    fn default() -> Self {
        Self {
            actors: 1,
            batch_worlds: 1,
            channel_capacity: 4,
            stall_timeout: Duration::from_secs(30),
            max_respawns: 2,
            respawn_backoff_ms: 10,
        }
    }
}

impl RolloutOptions {
    /// Whether these options ask for anything beyond the plain sequential
    /// loop (more than one actor thread or world replica).
    pub fn is_distributed(&self) -> bool {
        self.actors > 1 || self.batch_worlds > 1
    }
}

/// Per-vehicle episode-outcome flags shipped from actor to learner (what
/// the sequential loop reads off the environment after each step).
#[derive(Clone, Debug, Default)]
struct WorldFlags {
    collided: Vec<bool>,
    needs_merge: Vec<bool>,
    has_merged: Vec<bool>,
}

enum ToActor {
    /// Reset local world `world`, first seating its RNG stream at `rng`
    /// (the learner owns every stream; actors are stateless compute).
    Reset { world: usize, rng: Vec<u64> },
    /// Step the listed local worlds in one batched `step_worlds` call.
    Step {
        worlds: Vec<usize>,
        commands: Vec<Vec<VehicleCommand>>,
    },
}

struct WorldStepMsg {
    world: usize,
    observations: Vec<Observation>,
    states: Vec<VehicleState>,
    rewards: Vec<f32>,
    done: bool,
    mean_speed: f32,
    flags: WorldFlags,
}

enum FromActor {
    ResetDone {
        world: usize,
        observations: Vec<Observation>,
        states: Vec<VehicleState>,
        rng: Vec<u64>,
        flags: WorldFlags,
        events: Vec<CapturedEvent>,
    },
    StepDone {
        steps: Vec<WorldStepMsg>,
        events: Vec<CapturedEvent>,
    },
}

fn flags_of(shard: &BatchWorld, w: usize, n: usize) -> WorldFlags {
    WorldFlags {
        collided: (0..n).map(|i| shard.has_collided(w, i)).collect(),
        needs_merge: (0..n).map(|i| shard.needs_merge(w, i)).collect(),
        has_merged: (0..n).map(|i| shard.has_merged(w, i)).collect(),
    }
}

/// Fault-plan behavior injected into one actor incarnation. Only
/// generation 0 of a slot ever carries a fault; respawned incarnations
/// are always healthy.
#[derive(Clone, Copy, Debug, Default)]
struct ActorFault {
    stall: bool,
    panic: bool,
    slow_ms: Option<u64>,
}

impl ActorFault {
    fn healthy() -> Self {
        Self::default()
    }
}

/// One supervised actor slot: the live incarnation's channels and join
/// handle plus the slot's position on the escalation ladder.
struct ActorSlot {
    tx: channel::Sender<ToActor>,
    rx: channel::Receiver<FromActor>,
    /// Taken when the thread is joined (panic harvest or teardown).
    handle: Option<JoinHandle<()>>,
    /// Incarnation counter; generation 0 is the original spawn.
    generation: u64,
    respawns_used: usize,
    /// Permanently degraded: the respawn budget is exhausted and the
    /// supervisor will never revive this slot.
    retired: bool,
}

/// Everything needed to (re)spawn an actor incarnation. Owned data only,
/// so respawned threads are `'static` and outlive any borrow the learner
/// holds.
struct ActorSpawner {
    env_cfg: EnvConfig,
    spawns: Vec<VehicleSpawn>,
    seed: u64,
    worlds: usize,
    cap: usize,
    capture: bool,
    shutdown: Arc<AtomicBool>,
}

impl ActorSpawner {
    fn spawn(&self, index: usize, generation: u64, fault: ActorFault) -> ActorSlot {
        let (tx_cmd, rx_cmd) = channel::bounded::<ToActor>(self.cap);
        let (tx_res, rx_res) = channel::bounded::<FromActor>(self.cap);
        let cfg = self.env_cfg;
        let spawns = self.spawns.clone();
        let (seed, worlds, capture) = (self.seed, self.worlds, self.capture);
        let shutdown = Arc::clone(&self.shutdown);
        let handle = std::thread::Builder::new()
            .name(format!("hero-actor-{index}-gen{generation}"))
            .spawn(move || {
                actor_loop(cfg, spawns, seed, worlds, rx_cmd, tx_res, capture, fault, shutdown)
            })
            .expect("spawn actor thread");
        ActorSlot {
            tx: tx_cmd,
            rx: rx_res,
            handle: Some(handle),
            generation,
            respawns_used: 0,
            retired: false,
        }
    }
}

/// The body of one actor thread: build the world shard, then serve
/// reset/step requests until the command channel closes. Telemetry emitted
/// while serving a request is captured and shipped back for the learner to
/// replay in deterministic order; telemetry from shard construction is
/// captured and discarded (the learner already owns the canonical
/// environment).
#[allow(clippy::too_many_arguments)]
fn actor_loop(
    cfg: EnvConfig,
    spawns: Vec<VehicleSpawn>,
    seed: u64,
    worlds: usize,
    rx: channel::Receiver<ToActor>,
    tx: channel::Sender<FromActor>,
    capture: bool,
    fault: ActorFault,
    shutdown: Arc<AtomicBool>,
) {
    if fault.panic {
        // Injected fault: die before serving anything. The learner sees
        // the disconnect and harvests this payload off the join handle.
        panic!("fault plan: injected actor panic");
    }
    if fault.stall {
        // Injected fault: freeze before serving anything, but stay
        // responsive to shutdown so engine teardown cannot deadlock.
        while !shutdown.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(2));
        }
        return;
    }
    telemetry::begin_capture();
    let proto = LaneChangeEnv::new(cfg, spawns, seed);
    let mut shard = BatchWorld::replicate(&proto, worlds);
    let _ = telemetry::take_capture();
    let n = shard.num_vehicles();
    while let Ok(msg) = rx.recv() {
        if capture {
            telemetry::begin_capture();
        }
        let reply = match msg {
            ToActor::Reset { world, rng } => {
                shard.set_rng_state(world, &rng);
                let observations = shard.reset_world(world);
                FromActor::ResetDone {
                    world,
                    states: (0..n).map(|i| shard.vehicle_state(world, i)).collect(),
                    rng: shard.rng_state(world),
                    flags: flags_of(&shard, world, n),
                    observations,
                    events: Vec::new(),
                }
            }
            ToActor::Step { worlds, commands } => {
                let outs = shard.step_worlds(&worlds, &commands);
                let steps = worlds
                    .iter()
                    .zip(outs)
                    .map(|(&w, out)| WorldStepMsg {
                        world: w,
                        states: (0..n).map(|i| shard.vehicle_state(w, i)).collect(),
                        flags: flags_of(&shard, w, n),
                        observations: out.observations,
                        rewards: out.rewards,
                        done: out.done,
                        mean_speed: out.mean_speed,
                    })
                    .collect();
                FromActor::StepDone {
                    steps,
                    events: Vec::new(),
                }
            }
        };
        let events = if capture {
            telemetry::take_capture()
        } else {
            Vec::new()
        };
        let reply = match reply {
            FromActor::ResetDone {
                world,
                observations,
                states,
                rng,
                flags,
                ..
            } => FromActor::ResetDone {
                world,
                observations,
                states,
                rng,
                flags,
                events,
            },
            FromActor::StepDone { steps, .. } => FromActor::StepDone { steps, events },
        };
        if let Some(ms) = fault.slow_ms {
            // Injected fault: delay every reply (wall-clock only; the
            // reply bytes are untouched, so data stays bit-identical).
            std::thread::sleep(Duration::from_millis(ms));
        }
        if tx.send(reply).is_err() {
            break;
        }
    }
}

/// Pre-built metric names for the `live/` rollout plane, so the
/// per-step instrumentation sites don't allocate.
struct LiveNames {
    queue_now: Vec<String>,
    queue_depth: Vec<String>,
    blocked_send: Vec<String>,
    heartbeat: Vec<String>,
    util: Vec<String>,
}

impl LiveNames {
    fn new(actors: usize) -> Self {
        let per = |prefix: &str| -> Vec<String> {
            (0..actors).map(|a| format!("{prefix}/actor{a}")).collect()
        };
        Self {
            queue_now: per("live/queue_depth_now"),
            queue_depth: per("live/queue_depth"),
            blocked_send: per("live/blocked_send_us"),
            heartbeat: per("live/heartbeat_s"),
            util: per("live/actor_util"),
        }
    }
}

/// Learner-side state shared by the serial and batched loops.
struct Learner<'a> {
    team: &'a mut HeroTeam,
    rng: &'a mut StdRng,
    rec: &'a mut Recorder,
    cursors: &'a mut Vec<TeamCursor>,
    world_rng: &'a mut Vec<Vec<u64>>,
    step_counter: &'a mut usize,
    update_counter: &'a mut usize,
    store: &'a mut Option<CheckpointStore>,
    opts: &'a TrainOptions,
    ckpt: &'a CheckpointConfig,
    rollout: &'a RolloutOptions,
    track: Track,
    learners: Vec<usize>,
    n_vehicles: usize,
    slots: Vec<ActorSlot>,
    spawner: ActorSpawner,
    /// Joined at teardown: threads of replaced incarnations that may
    /// still be sleeping on the shutdown flag (stalled generation 0s).
    zombies: Vec<JoinHandle<()>>,
    dead: Vec<bool>,
    start_episode: usize,
    // The `live/` observability plane: wall-clock process state feeding
    // the metrics exporter and `hero-top`. Never consulted by any
    // training decision, so it cannot perturb determinism.
    engine_start: Instant,
    outstanding: Vec<u64>,
    busy_us: Vec<u64>,
    wave_no: u64,
    pending_redispatch: Vec<usize>,
    names: LiveNames,
}

impl Learner<'_> {
    /// Honors a `kill@ep:N` fault exactly like the sequential loop.
    fn kill_check(&mut self, episode: usize, episodes_run: usize) -> Option<(bool, usize)> {
        if self.ckpt.fault_plan.should_kill(episode) {
            telemetry::counter_add("checkpoint/fault_kill", 1);
            telemetry::flight_event(FlightEventKind::KillInjected {
                episode: episode as u64,
            });
            telemetry::mark_faulted();
            let _ = telemetry::flush();
            match self.ckpt.kill_mode {
                KillMode::Exit => std::process::exit(137),
                KillMode::Return => return Some((false, episodes_run)),
            }
        }
        None
    }

    fn mark_stalled(&mut self, a: usize) {
        if !self.dead[a] {
            self.dead[a] = true;
            telemetry::counter_add("actor/stalled", 1);
            telemetry::flight_event(FlightEventKind::StallDetected { actor: a as u64 });
            // A stall is a fault: leave the flight recorder behind for
            // post-mortem even when the surviving actors finish the run.
            telemetry::mark_faulted();
            self.pending_redispatch.push(a);
            telemetry::progress(&format!("actor {a} stalled; re-dispatching its work"));
        }
    }

    /// Marks actor `a` dead after its reply channel disconnected, joining
    /// the thread to harvest the panic payload (a disconnect means the
    /// thread already exited, so the join cannot block).
    fn mark_disconnected(&mut self, a: usize) {
        if self.dead[a] {
            return;
        }
        self.dead[a] = true;
        let detail = match self.slots[a].handle.take().map(JoinHandle::join) {
            Some(Err(payload)) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                format!("panicked: {msg}")
            }
            Some(Ok(())) => "exited unexpectedly".to_string(),
            None => "disconnected".to_string(),
        };
        telemetry::counter_add("actor/panicked", 1);
        telemetry::flight_event(FlightEventKind::ActorPanicked { actor: a as u64 });
        telemetry::mark_faulted();
        self.pending_redispatch.push(a);
        telemetry::progress(&format!("actor {a} {detail}; harvesting its work"));
    }

    /// The supervisor's ladder, applied to every failed slot: respawn
    /// while budget remains (fresh thread/shard/channels after a
    /// deterministic exponential backoff), else retire the slot for good.
    /// Only called at points where no request is in flight to the slot.
    fn supervise_failed(&mut self) {
        for a in 0..self.slots.len() {
            if !self.dead[a] || self.slots[a].retired {
                continue;
            }
            let used = self.slots[a].respawns_used;
            if used >= self.rollout.max_respawns {
                self.slots[a].retired = true;
                let remaining = self.live_actors() as u64;
                telemetry::counter_add("supervisor/degraded", 1);
                telemetry::flight_event(FlightEventKind::SupervisorDegraded {
                    actor: a as u64,
                    remaining,
                });
                telemetry::progress(&format!(
                    "actor {a} exhausted its respawn budget; \
                     continuing degraded on {remaining} actor(s)"
                ));
                continue;
            }
            let backoff = self
                .rollout
                .respawn_backoff_ms
                .saturating_mul(1u64 << (used as u32).min(12))
                .min(4096);
            if backoff > 0 {
                std::thread::sleep(Duration::from_millis(backoff));
            }
            let generation = self.slots[a].generation + 1;
            let mut fresh = self.spawner.spawn(a, generation, ActorFault::healthy());
            fresh.respawns_used = used + 1;
            let old = std::mem::replace(&mut self.slots[a], fresh);
            // Dropping the old channels lets a merely-slow thread exit on
            // its next send; a stalled one is still sleeping on the
            // shutdown flag, so park its handle for teardown.
            if let Some(h) = old.handle {
                self.zombies.push(h);
            }
            self.dead[a] = false;
            self.outstanding[a] = 0;
            telemetry::counter_add("actor/respawned", 1);
            telemetry::flight_event(FlightEventKind::ActorRespawned {
                actor: a as u64,
                generation,
            });
            telemetry::progress(&format!("actor {a} respawned (generation {generation})"));
        }
    }

    /// The ladder's last rung: no live actor remains. Saves an emergency
    /// checkpoint when at a clean episode boundary (`boundary` carries the
    /// next episode index and, in batched mode, the worker states), marks
    /// the run faulted, and returns the typed abort for the caller to
    /// propagate.
    fn fleet_lost(
        &mut self,
        boundary: Option<(usize, Option<WorkerStates>)>,
        episodes_run: usize,
    ) -> TrainError {
        telemetry::counter_add("supervisor/fleet_lost", 1);
        telemetry::mark_faulted();
        let saved = match boundary {
            Some((next_episode, workers)) => self.save_checkpoint(next_episode, workers),
            None => {
                // Mid-episode state is half-ingested; snapshotting it
                // would poison a resume, so the ladder skips the save.
                telemetry::counter_add("supervisor/emergency_skipped", 1);
                false
            }
        };
        if saved {
            telemetry::counter_add("supervisor/emergency_saved", 1);
        }
        telemetry::flight_event(FlightEventKind::EmergencyCheckpoint {
            episodes: episodes_run as u64,
            saved: saved as u64,
        });
        telemetry::progress(&format!(
            "actor fleet lost after {episodes_run} episode(s); emergency checkpoint {}",
            if saved { "saved" } else { "not saved" }
        ));
        let _ = telemetry::flush();
        TrainError::FleetLost {
            episodes_run,
            emergency_checkpoint_saved: saved,
        }
    }

    fn live_actors(&self) -> usize {
        self.dead.iter().filter(|d| !**d).count()
    }

    /// Refreshes the aggregate queue/actor gauges. Only called from
    /// instrumentation sites that already checked a sink is active.
    fn refresh_live_gauges(&self) {
        let mut total = 0u64;
        let mut busy = 0usize;
        for (a, &o) in self.outstanding.iter().enumerate() {
            telemetry::gauge_set(&self.names.queue_now[a], o as f64);
            if !self.dead[a] {
                total += o;
                if o > 0 {
                    busy += 1;
                }
            }
        }
        telemetry::gauge_set("live/queue_depth_total", total as f64);
        telemetry::gauge_set("live/actors_busy", busy as f64);
        telemetry::gauge_set("live/actors_total", self.live_actors() as f64);
    }

    /// Sends a request to actor `a`, timing how long the bounded channel
    /// blocked and maintaining the queue-depth plane. Returns `false` on
    /// disconnect (caller classifies the failure via
    /// [`Self::mark_disconnected`]).
    fn send_to(&mut self, a: usize, msg: ToActor) -> bool {
        if telemetry::disabled() {
            return self.slots[a].tx.send(msg).is_ok();
        }
        let t0 = Instant::now();
        let ok = self.slots[a].tx.send(msg).is_ok();
        telemetry::live_observe(
            &self.names.blocked_send[a],
            t0.elapsed().as_secs_f64() * 1e6,
        );
        if ok {
            self.outstanding[a] += 1;
            telemetry::live_observe(&self.names.queue_depth[a], self.outstanding[a] as f64);
        }
        self.refresh_live_gauges();
        ok
    }

    /// Receives one message from actor `a`, classifying failures: a
    /// timeout marks it stalled, a disconnect joins the thread and
    /// harvests its panic. Returns `None` on either.
    fn recv(&mut self, a: usize) -> Option<FromActor> {
        if telemetry::disabled() {
            return match self.slots[a].rx.recv_timeout(self.rollout.stall_timeout) {
                Ok(m) => Some(m),
                Err(e) => {
                    self.note_recv_failure(a, e);
                    None
                }
            };
        }
        let t0 = Instant::now();
        match self.slots[a].rx.recv_timeout(self.rollout.stall_timeout) {
            Ok(m) => {
                // The learner's wait for this reply approximates the
                // actor's busy time (request/reply protocol); its ratio
                // against engine wall-clock is the utilization gauge.
                self.busy_us[a] += t0.elapsed().as_micros() as u64;
                let elapsed_us = self.engine_start.elapsed().as_micros().max(1) as u64;
                telemetry::gauge_set(
                    &self.names.util[a],
                    (self.busy_us[a] as f64 / elapsed_us as f64).min(1.0),
                );
                telemetry::gauge_set(
                    &self.names.heartbeat[a],
                    telemetry::elapsed_s().unwrap_or_default(),
                );
                self.outstanding[a] = self.outstanding[a].saturating_sub(1);
                self.refresh_live_gauges();
                Some(m)
            }
            Err(e) => {
                self.note_recv_failure(a, e);
                None
            }
        }
    }

    fn note_recv_failure(&mut self, a: usize, e: channel::RecvTimeoutError) {
        match e {
            channel::RecvTimeoutError::Timeout => self.mark_stalled(a),
            channel::RecvTimeoutError::Disconnected => self.mark_disconnected(a),
        }
    }

    fn mean_learner_reward(&self, rewards: &[f32]) -> f32 {
        self.learners.iter().map(|&v| rewards[v]).sum::<f32>() / self.learners.len() as f32
    }

    /// The per-step update cadence, identical to the sequential loop
    /// (call after incrementing the step counter).
    fn run_update_cadence(&mut self) {
        if *self.step_counter % self.opts.update_every == 0 {
            let _update = telemetry::span("update");
            let live_t0 = (!telemetry::disabled()).then(Instant::now);
            if self.ckpt.fault_plan.nan_grad_at(*self.update_counter) {
                if let Some(agent) = self.team.agents_mut().first_mut() {
                    agent.poison_gradients();
                }
            }
            *self.update_counter += 1;
            if let Some((c, a)) = self.team.update(self.rng) {
                telemetry::counter_add("grad_updates", 1);
                telemetry::observe("critic_loss", c as f64);
                telemetry::observe("actor_loss", a as f64);
                self.rec.push("critic_loss", c);
                self.rec.push("actor_loss", a);
            }
            if let Some(t0) = live_t0 {
                telemetry::live_observe(
                    "live/learner_update_us",
                    t0.elapsed().as_secs_f64() * 1e6,
                );
            }
        }
    }

    fn worker_states(&self) -> WorkerStates {
        WorkerStates {
            rngs: self.world_rng.clone(),
            last_options: self
                .cursors
                .iter()
                .map(|c| c.last_options().to_vec())
                .collect(),
        }
    }

    /// Returns whether a snapshot actually reached disk.
    fn save_checkpoint(&mut self, next_episode: usize, workers: Option<WorkerStates>) -> bool {
        self.team.absorb_cursor(&self.cursors[0]);
        let snap = TrainerSnapshot {
            next_episode,
            step_counter: *self.step_counter,
            update_counter: *self.update_counter,
            trainer_rng: self.rng.state(),
            env_rng: self.world_rng[0].clone(),
            recorder: self.rec.clone(),
            telemetry: telemetry::export_state(),
            workers,
            kernel_mode: hero_autograd::kernel_mode(),
            team_sections: self.team.save_state(),
        };
        if let Some(store) = self.store.as_mut() {
            store.save(&snap.to_sections(), &self.ckpt.fault_plan)
        } else {
            false
        }
    }

    /// Serial-mode recovery from a mid-episode actor failure: rebuild the
    /// episode on another (or a respawned) actor by reseating the
    /// episode-start RNG stream and replaying the logged commands. Replies
    /// and telemetry of already-ingested steps are discarded; the final
    /// replayed step IS the missing reply, returned for normal ingestion.
    /// `None` means the fleet is lost.
    fn rehost_serial(
        &mut self,
        episode: usize,
        ep_rng0: &[u64],
        cmd_log: &[Vec<VehicleCommand>],
    ) -> Option<(usize, WorldStepMsg, Vec<CapturedEvent>)> {
        let actors = self.slots.len();
        loop {
            self.supervise_failed();
            if self.live_actors() == 0 {
                return None;
            }
            'candidates: for offset in 0..actors {
                let a = (episode + offset) % actors;
                if self.dead[a] {
                    continue;
                }
                let reset = ToActor::Reset {
                    world: 0,
                    rng: ep_rng0.to_vec(),
                };
                if !self.send_to(a, reset) {
                    self.mark_disconnected(a);
                    continue;
                }
                let Some(FromActor::ResetDone { rng, .. }) = self.recv(a) else {
                    continue; // recv classified the failure
                };
                // The replayed reset must land exactly where the original
                // did — the learner still holds that stream.
                debug_assert_eq!(rng, self.world_rng[0]);
                for (i, cmds) in cmd_log.iter().enumerate() {
                    let step = ToActor::Step {
                        worlds: vec![0],
                        commands: vec![cmds.clone()],
                    };
                    if !self.send_to(a, step) {
                        self.mark_disconnected(a);
                        continue 'candidates;
                    }
                    let Some(FromActor::StepDone {
                        steps: mut step_msgs,
                        events,
                    }) = self.recv(a)
                    else {
                        continue 'candidates;
                    };
                    if i + 1 == cmd_log.len() {
                        telemetry::counter_add("actor/replayed_steps", i as u64);
                        telemetry::flight_event(FlightEventKind::Redispatched {
                            actor: a as u64,
                            wave: episode as u64,
                        });
                        telemetry::progress(&format!(
                            "episode {episode} recovered on actor {a} after replaying {i} step(s)"
                        ));
                        let msg = step_msgs.pop().expect("exactly one world stepped");
                        return Some((a, msg, events));
                    }
                }
            }
            // Every candidate died while replaying; climb the ladder again
            // (respawn budget permitting) or report the fleet lost.
        }
    }

    /// Batched-mode recovery: replay actor `a`'s still-running worlds of
    /// this wave onto a respawned incarnation. Returns `false` when the
    /// slot is retired (its in-flight episodes are abandoned and re-run as
    /// fresh episodes by the surviving fleet).
    fn recover_actor_batched(
        &mut self,
        a: usize,
        worlds_a: &[usize],
        ep_rng0: &[Vec<u64>],
        wave_cmd_log: &[Vec<Vec<VehicleCommand>>],
        wave_no: u64,
        msgs: &mut [Option<WorldStepMsg>],
    ) -> bool {
        let per_actor = self.rollout.batch_worlds;
        'attempt: loop {
            self.supervise_failed();
            if self.dead[a] {
                telemetry::counter_add("supervisor/abandoned_worlds", worlds_a.len() as u64);
                telemetry::progress(&format!(
                    "actor {a} unrecoverable; abandoning {} in-flight episode(s)",
                    worlds_a.len()
                ));
                return false;
            }
            let mut replayed = 0u64;
            for &g in worlds_a {
                let w = g % per_actor;
                let reset = ToActor::Reset {
                    world: w,
                    rng: ep_rng0[g].clone(),
                };
                if !self.send_to(a, reset) {
                    self.mark_disconnected(a);
                    continue 'attempt;
                }
                let Some(FromActor::ResetDone { .. }) = self.recv(a) else {
                    continue 'attempt;
                };
                let log = &wave_cmd_log[g];
                for (i, cmds) in log.iter().enumerate() {
                    let step = ToActor::Step {
                        worlds: vec![w],
                        commands: vec![cmds.clone()],
                    };
                    if !self.send_to(a, step) {
                        self.mark_disconnected(a);
                        continue 'attempt;
                    }
                    let Some(FromActor::StepDone {
                        steps: mut step_msgs,
                        events,
                    }) = self.recv(a)
                    else {
                        continue 'attempt;
                    };
                    if i + 1 == log.len() {
                        telemetry::replay(events);
                        msgs[g] = Some(step_msgs.pop().expect("exactly one world stepped"));
                    } else {
                        replayed += 1;
                    }
                }
            }
            telemetry::counter_add("actor/replayed_steps", replayed);
            telemetry::flight_event(FlightEventKind::Redispatched {
                actor: a as u64,
                wave: wave_no,
            });
            telemetry::progress(&format!(
                "wave {wave_no} recovered actor {a}'s {} world(s) after replaying {replayed} step(s)",
                worlds_a.len()
            ));
            return true;
        }
    }

    /// Serial mode: one episode at a time, round-robin over live actors,
    /// single learner-owned environment stream. Bit-identical to
    /// [`crate::trainer::train_team_checkpointed`] — including across
    /// actor failures, because every episode can be replayed from its
    /// start stream and command log.
    fn serial_run(&mut self) -> Result<(bool, usize), TrainError> {
        let actors = self.slots.len();
        let mut episodes_run = 0usize;
        for episode in self.start_episode..self.opts.episodes {
            if let Some(out) = self.kill_check(episode, episodes_run) {
                return Ok(out);
            }
            self.supervise_failed();
            if self.live_actors() == 0 {
                return Err(self.fleet_lost(Some((episode, None)), episodes_run));
            }
            // Serial mode: one episode == one wave of one world.
            let wave_t0 = Instant::now();
            telemetry::flight_event(FlightEventKind::WaveDispatched {
                wave: episode as u64,
                worlds: 1,
            });
            // The episode's start stream: everything after this point can
            // be replayed onto a fresh shard from it plus the command log.
            let ep_rng0 = self.world_rng[0].clone();
            // Host the episode on the round-robin actor, skipping (and
            // re-dispatching past) failed ones. Nothing of the episode
            // has been ingested until ResetDone arrives, so retrying the
            // reset on another actor is side-effect free.
            let hosted = loop {
                let mut hosted = None;
                for offset in 0..actors {
                    let a = (episode + offset) % actors;
                    if self.dead[a] {
                        continue;
                    }
                    let msg = ToActor::Reset {
                        world: 0,
                        rng: self.world_rng[0].clone(),
                    };
                    if !self.send_to(a, msg) {
                        self.mark_disconnected(a);
                        continue;
                    }
                    match self.recv(a) {
                        Some(FromActor::ResetDone {
                            observations,
                            states,
                            rng,
                            flags,
                            events,
                            ..
                        }) => {
                            telemetry::replay(events);
                            self.world_rng[0] = rng;
                            if offset > 0 {
                                // The round-robin host was dead or failed:
                                // this actor took the episode over.
                                telemetry::flight_event(FlightEventKind::Redispatched {
                                    actor: a as u64,
                                    wave: episode as u64,
                                });
                            }
                            hosted = Some((observations, states, flags, a));
                            break;
                        }
                        _ => continue, // recv classified the failure
                    }
                }
                self.pending_redispatch.clear();
                if let Some(h) = hosted {
                    break h;
                }
                // Every actor failed while hosting this (side-effect free)
                // reset: climb the ladder and retry, or abort cleanly.
                self.supervise_failed();
                if self.live_actors() == 0 {
                    return Err(self.fleet_lost(Some((episode, None)), episodes_run));
                }
            };
            let (mut obs, mut states, mut flags, mut actor) = hosted;
            self.cursors[0].begin_episode();
            let mut cmd_log: Vec<Vec<VehicleCommand>> = Vec::new();
            let mut ep_reward = 0.0f32;
            let mut ep_speed = 0.0f32;
            let mut steps = 0usize;
            let mut done = false;
            while !done {
                let rollout_span = telemetry::span("rollout");
                let commands = self.team.decide_in(
                    &mut self.cursors[0],
                    &self.track,
                    &self.learners,
                    self.n_vehicles,
                    &states,
                    &obs,
                    self.rng,
                    true,
                );
                cmd_log.push(commands.clone());
                let delivered = 'deliver: {
                    let msg = ToActor::Step {
                        worlds: vec![0],
                        commands: vec![commands],
                    };
                    if self.send_to(actor, msg) {
                        if let Some(FromActor::StepDone {
                            steps: mut step_msgs,
                            events,
                        }) = self.recv(actor)
                        {
                            let msg = step_msgs.pop().expect("exactly one world stepped");
                            break 'deliver Some((actor, msg, events));
                        }
                    } else {
                        self.mark_disconnected(actor);
                    }
                    // The host failed mid-episode. Steps 0..k-1 are already
                    // ingested, but the learner owns the episode-start RNG
                    // and the full command log, so a fresh shard replays
                    // the episode bit-identically.
                    self.rehost_serial(episode, &ep_rng0, &cmd_log)
                };
                let Some((host, msg, events)) = delivered else {
                    drop(rollout_span);
                    return Err(self.fleet_lost(None, episodes_run));
                };
                actor = host;
                telemetry::replay(events);
                self.team.record_in(
                    &mut self.cursors[0],
                    &self.track,
                    &self.learners,
                    &msg.states,
                    &obs,
                    &msg.rewards,
                    &msg.observations,
                    msg.done,
                );
                drop(rollout_span);
                ep_reward += self.mean_learner_reward(&msg.rewards);
                ep_speed += msg.mean_speed;
                steps += 1;
                *self.step_counter += 1;
                self.run_update_cadence();
                obs = msg.observations;
                states = msg.states;
                flags = msg.flags;
                done = msg.done;
            }
            telemetry::counter_add("episodes", 1);
            telemetry::flight_event(FlightEventKind::WaveCompleted {
                wave: episode as u64,
                episodes: 1,
            });
            if !telemetry::disabled() {
                telemetry::live_observe("live/wave_us", wave_t0.elapsed().as_secs_f64() * 1e6);
            }
            telemetry::progress(&format!("ep {}", episode + 1));
            record_episode_flags(self.rec, &self.learners, &flags, ep_reward, ep_speed, steps);
            episodes_run += 1;
            if self.store.is_some() && self.ckpt.every > 0 && (episode + 1) % self.ckpt.every == 0
            {
                self.save_checkpoint(episode + 1, None);
            }
        }
        Ok((true, episodes_run))
    }

    /// Batched mode: waves of episodes across all world replicas, with
    /// per-wave resets, batched policy forwards, and batched world steps.
    fn batched_run(&mut self) -> Result<(bool, usize), TrainError> {
        let actors = self.slots.len();
        let per_actor = self.rollout.batch_worlds;
        let total = actors * per_actor;
        let n_agents = self.learners.len();
        let mut episodes_run = 0usize;
        let mut completed_total = self.start_episode;

        let mut obs: Vec<Vec<Observation>> = vec![Vec::new(); total];
        let mut states: Vec<Vec<VehicleState>> = vec![Vec::new(); total];
        let mut flags: Vec<WorldFlags> = vec![WorldFlags::default(); total];

        while completed_total < self.opts.episodes {
            if let Some(out) = self.kill_check(completed_total, episodes_run) {
                return Ok(out);
            }
            self.supervise_failed();
            if self.live_actors() == 0 {
                let workers = self.worker_states();
                return Err(
                    self.fleet_lost(Some((completed_total, Some(workers))), episodes_run)
                );
            }
            // Wave size: every live world runs one episode, capped so the
            // wave never crosses the remaining-episode count, a scheduled
            // kill, or a checkpoint boundary.
            let live_worlds: Vec<usize> =
                (0..total).filter(|g| !self.dead[g / per_actor]).collect();
            let mut wave = live_worlds.len().min(self.opts.episodes - completed_total);
            if let Some(k) = self.ckpt.fault_plan.kill_episode() {
                if k > completed_total {
                    wave = wave.min(k - completed_total);
                }
            }
            if self.ckpt.every > 0 {
                wave = wave.min(self.ckpt.every - completed_total % self.ckpt.every);
            }
            let assigned: Vec<usize> = live_worlds.into_iter().take(wave).collect();

            let wave_no = self.wave_no;
            self.wave_no += 1;
            let wave_t0 = Instant::now();
            telemetry::flight_event(FlightEventKind::WaveDispatched {
                wave: wave_no,
                worlds: assigned.len() as u64,
            });
            // Worlds stranded on previously failed actors are folded back
            // into this wave's live assignment.
            if !assigned.is_empty() {
                for _failed in std::mem::take(&mut self.pending_redispatch) {
                    telemetry::flight_event(FlightEventKind::Redispatched {
                        actor: (assigned[0] / per_actor) as u64,
                        wave: wave_no,
                    });
                }
            }

            // Reset the wave's worlds (grouped per actor, received in
            // actor order — deterministic regardless of thread timing).
            // Each world's start stream is kept for mid-wave replay.
            let mut ep_rng0: Vec<Vec<u64>> = vec![Vec::new(); total];
            let mut wave_cmd_log: Vec<Vec<Vec<VehicleCommand>>> = vec![Vec::new(); total];
            let mut sent = vec![0usize; actors];
            for &g in &assigned {
                let a = g / per_actor;
                if self.dead[a] {
                    continue;
                }
                ep_rng0[g] = self.world_rng[g].clone();
                let msg = ToActor::Reset {
                    world: g % per_actor,
                    rng: self.world_rng[g].clone(),
                };
                if !self.send_to(a, msg) {
                    self.mark_disconnected(a);
                } else {
                    sent[a] += 1;
                }
            }
            let mut active: Vec<usize> = Vec::new();
            for (a, &count) in sent.iter().enumerate() {
                for _ in 0..count {
                    if self.dead[a] {
                        break;
                    }
                    match self.recv(a) {
                        Some(FromActor::ResetDone {
                            world,
                            observations,
                            states: st,
                            rng,
                            flags: fl,
                            events,
                        }) => {
                            telemetry::replay(events);
                            let g = a * per_actor + world;
                            self.world_rng[g] = rng;
                            obs[g] = observations;
                            states[g] = st;
                            flags[g] = fl;
                            self.cursors[g].begin_episode();
                            active.push(g);
                        }
                        _ => break, // recv classified the actor's failure
                    }
                }
            }
            if active.is_empty() {
                continue; // all reset targets failed; retry after supervision
            }

            let mut ep_reward = vec![0.0f32; total];
            let mut ep_speed = vec![0.0f32; total];
            let mut ep_steps = vec![0usize; total];
            let mut running = active.clone();
            while !running.is_empty() {
                // Phase B: decide for every running world (world order).
                // Policy forwards for all worlds still selecting an option
                // are batched per agent into one matmul; the RNG draws
                // stay strictly in world order.
                let mut msgs: Vec<Option<WorldStepMsg>> = (0..total).map(|_| None).collect();
                let mut abandoned: Vec<usize> = Vec::new();
                {
                    let _rollout_span = telemetry::span("rollout");
                    let mut logits: Vec<Vec<Option<Vec<f32>>>> =
                        vec![vec![None; n_agents]; running.len()];
                    if running.len() > 1 {
                        for k in 0..n_agents {
                            let v = self.learners[k];
                            let sel: Vec<usize> = running
                                .iter()
                                .enumerate()
                                .filter(|(_, &g)| {
                                    self.cursors[g].agents()[k].current_option().is_none()
                                })
                                .map(|(pos, _)| pos)
                                .collect();
                            if sel.len() > 1 {
                                let rows_owned: Vec<Vec<f32>> = sel
                                    .iter()
                                    .map(|&pos| obs[running[pos]][v].high_vec())
                                    .collect();
                                let rows: Vec<&[f32]> =
                                    rows_owned.iter().map(|r| r.as_slice()).collect();
                                let batched = self.team.agents()[k].batch_logits(&rows);
                                for (i, &pos) in sel.iter().enumerate() {
                                    logits[pos][k] = Some(batched[i].clone());
                                }
                            }
                        }
                    }
                    let mut groups: Vec<(Vec<usize>, Vec<Vec<VehicleCommand>>)> =
                        vec![(Vec::new(), Vec::new()); actors];
                    for (pos, &g) in running.iter().enumerate() {
                        let commands = self.team.decide_in_with_logits(
                            &mut self.cursors[g],
                            &self.track,
                            &self.learners,
                            self.n_vehicles,
                            &states[g],
                            &obs[g],
                            &logits[pos],
                            self.rng,
                            true,
                        );
                        wave_cmd_log[g].push(commands.clone());
                        let a = g / per_actor;
                        groups[a].0.push(g % per_actor);
                        groups[a].1.push(commands);
                    }
                    let mut failed_send = vec![false; actors];
                    for (a, (worlds, commands)) in groups.into_iter().enumerate() {
                        if worlds.is_empty() {
                            continue;
                        }
                        if !self.send_to(a, ToActor::Step { worlds, commands }) {
                            self.mark_disconnected(a);
                            failed_send[a] = true;
                        }
                    }
                    for a in 0..actors {
                        let worlds_a: Vec<usize> = running
                            .iter()
                            .copied()
                            .filter(|&g| g / per_actor == a)
                            .collect();
                        if worlds_a.is_empty() {
                            continue;
                        }
                        let ok = !failed_send[a]
                            && !self.dead[a]
                            && match self.recv(a) {
                                Some(FromActor::StepDone { steps, events }) => {
                                    telemetry::replay(events);
                                    for m in steps {
                                        let g = a * per_actor + m.world;
                                        msgs[g] = Some(m);
                                    }
                                    true
                                }
                                _ => false,
                            };
                        if !ok
                            && !self.recover_actor_batched(
                                a,
                                &worlds_a,
                                &ep_rng0,
                                &wave_cmd_log,
                                wave_no,
                                &mut msgs,
                            )
                        {
                            if self.live_actors() == 0 {
                                return Err(self.fleet_lost(None, episodes_run));
                            }
                            abandoned.extend(worlds_a);
                        }
                    }
                }
                if !abandoned.is_empty() {
                    running.retain(|g| !abandoned.contains(g));
                }

                // Phase A: ingest results in global world order.
                let mut still = Vec::new();
                for &g in &running {
                    let msg = msgs[g].take().expect("actor stepped this world");
                    self.team.record_in(
                        &mut self.cursors[g],
                        &self.track,
                        &self.learners,
                        &msg.states,
                        &obs[g],
                        &msg.rewards,
                        &msg.observations,
                        msg.done,
                    );
                    ep_reward[g] += self.mean_learner_reward(&msg.rewards);
                    ep_speed[g] += msg.mean_speed;
                    ep_steps[g] += 1;
                    *self.step_counter += 1;
                    self.run_update_cadence();
                    obs[g] = msg.observations;
                    states[g] = msg.states;
                    flags[g] = msg.flags;
                    if msg.done {
                        telemetry::counter_add("episodes", 1);
                        telemetry::progress(&format!("ep {}", completed_total + 1));
                        record_episode_flags(
                            self.rec,
                            &self.learners,
                            &flags[g],
                            ep_reward[g],
                            ep_speed[g],
                            ep_steps[g],
                        );
                        completed_total += 1;
                        episodes_run += 1;
                    } else {
                        still.push(g);
                    }
                }
                running = still;
            }
            telemetry::flight_event(FlightEventKind::WaveCompleted {
                wave: wave_no,
                episodes: active.len() as u64,
            });
            if !telemetry::disabled() {
                telemetry::live_observe("live/wave_us", wave_t0.elapsed().as_secs_f64() * 1e6);
            }

            if self.store.is_some()
                && self.ckpt.every > 0
                && completed_total % self.ckpt.every == 0
            {
                let workers = self.worker_states();
                self.save_checkpoint(completed_total, Some(workers));
            }
        }
        Ok((true, episodes_run))
    }
}

fn record_episode_flags(
    rec: &mut Recorder,
    learners: &[usize],
    flags: &WorldFlags,
    ep_reward: f32,
    ep_speed: f32,
    steps: usize,
) {
    rec.push("reward", ep_reward / steps.max(1) as f32);
    rec.push(
        "collision",
        if learners.iter().any(|&v| flags.collided[v]) {
            1.0
        } else {
            0.0
        },
    );
    let candidates: Vec<usize> = learners
        .iter()
        .copied()
        .filter(|&v| flags.needs_merge[v])
        .collect();
    if !candidates.is_empty() {
        let merged = candidates.iter().filter(|&&v| flags.has_merged[v]).count();
        rec.push("success", merged as f32 / candidates.len() as f32);
    }
    rec.push("mean_speed", ep_speed / steps.max(1) as f32);
}

/// [`crate::trainer::train_team_checkpointed`] with rollout split across
/// supervised actor threads (see the module docs for the serial/batched
/// contract and the escalation ladder).
///
/// After training, `env`'s RNG stream is advanced to world 0's position
/// and the team's joint last-options vector reflects world 0's cursor, so
/// downstream evaluation behaves exactly as after a sequential run.
///
/// # Errors
///
/// [`TrainError::ResumeRefused`] when `--resume` finds a checkpoint from
/// an incompatible kernel mode, and [`TrainError::FleetLost`] when every
/// actor slot is dead with the respawn budget exhausted.
pub fn train_team_actor_learner(
    team: &mut HeroTeam,
    env: &mut LaneChangeEnv,
    opts: &TrainOptions,
    ckpt: &CheckpointConfig,
    rollout: &RolloutOptions,
) -> Result<TrainOutcome, TrainError> {
    assert!(rollout.actors >= 1, "need at least one actor thread");
    assert!(rollout.batch_worlds >= 1, "need at least one world per actor");
    let actors = rollout.actors;
    let per_actor = rollout.batch_worlds;
    let serial = per_actor == 1;
    let total_worlds = if serial { 1 } else { actors * per_actor };

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut rec = Recorder::new();
    let mut step_counter = 0usize;
    let mut update_counter = 0usize;
    let mut start_episode = 0usize;
    let mut restored_workers: Option<WorkerStates> = None;

    if ckpt.resume {
        if let Some(dir) = &ckpt.dir {
            match checkpoint::load_latest(dir) {
                Ok(Some(loaded)) => {
                    match TrainerSnapshot::from_sections(&loaded.sections)
                        .and_then(|snap| snap.verify_kernel_mode().map(|()| snap))
                        .and_then(|snap| restore_snapshot(team, env, &snap).map(|()| snap))
                    {
                        Ok(snap) => {
                            telemetry::counter_add("checkpoint/loaded", 1);
                            telemetry::flight_event(FlightEventKind::CheckpointLoaded {
                                index: loaded.index,
                            });
                            telemetry::counter_add(
                                "checkpoint/corrupt_skipped",
                                loaded.corrupt_skipped as u64,
                            );
                            if loaded.corrupt_skipped > 0 {
                                telemetry::counter_add("checkpoint/fallback", 1);
                            }
                            rng = StdRng::from_state(snap.trainer_rng);
                            step_counter = snap.step_counter;
                            update_counter = snap.update_counter;
                            start_episode = snap.next_episode;
                            restored_workers = snap.workers.clone();
                            rec = snap.recorder;
                        }
                        Err(e @ hero_autograd::CheckpointError::KernelModeMismatch { .. }) => {
                            // See trainer::train_team_checkpointed: a
                            // cross-mode resume must fail loudly, not fall
                            // back to a fresh run.
                            telemetry::progress(&format!("refusing to resume: {e}"));
                            let _ = telemetry::flush();
                            return Err(TrainError::ResumeRefused(e));
                        }
                        Err(e) => {
                            telemetry::counter_add("checkpoint/corrupt_skipped", 1);
                            telemetry::progress(&format!("resume failed, starting fresh: {e}"));
                        }
                    }
                }
                Ok(None) => {}
                Err(e) => {
                    telemetry::progress(&format!("checkpoint dir unreadable, starting fresh: {e}"));
                }
            }
        }
    }

    let mut store = ckpt.open_store();

    // The learner owns every world's environment RNG stream; world 0 is
    // the canonical env's own stream (so serial mode continues it
    // exactly), worlds g > 0 get independent replica streams. Replica
    // construction senses each world once purely to read its RNG stream;
    // capture and discard that telemetry, because a resumed run imports
    // the checkpoint's totals (which already counted the original
    // construction) and then rebuilds the replicas again — without the
    // discard its sensor counters would exceed an uninterrupted run's.
    telemetry::begin_capture();
    let mut world_rng: Vec<Vec<u64>> = (0..total_worlds)
        .map(|g| {
            if g == 0 {
                env.rng_state()
            } else {
                env.replica(g).rng_state()
            }
        })
        .collect();
    let _ = telemetry::take_capture();
    let mut cursors: Vec<TeamCursor> = (0..total_worlds).map(|_| team.new_cursor()).collect();
    if let Some(w) = &restored_workers {
        if w.rngs.len() == total_worlds {
            for g in 0..total_worlds {
                world_rng[g].clone_from(&w.rngs[g]);
                cursors[g].set_last_options(w.last_options[g].clone());
            }
        } else {
            telemetry::progress(&format!(
                "checkpoint has {} worker streams, run has {}; extra worlds start fresh",
                w.rngs.len(),
                total_worlds
            ));
        }
    }

    let track = env.config().track;
    let learners = env.learner_indices();
    let n_vehicles = env.num_vehicles();
    let cap = rollout.channel_capacity.max(per_actor).max(1);
    let capture = telemetry::is_enabled();
    let shutdown = Arc::new(AtomicBool::new(false));

    let spawner = ActorSpawner {
        env_cfg: *env.config(),
        spawns: env.spawns().to_vec(),
        seed: env.seed(),
        worlds: per_actor,
        cap,
        capture,
        shutdown: Arc::clone(&shutdown),
    };
    // Generation 0 carries the fault plan's actor faults; respawned
    // incarnations are always healthy.
    let slots: Vec<ActorSlot> = (0..actors)
        .map(|a| {
            let fault = ActorFault {
                stall: ckpt.fault_plan.stall_actor(a),
                panic: ckpt.fault_plan.panic_actor(a),
                slow_ms: ckpt.fault_plan.slow_actor_ms(a),
            };
            spawner.spawn(a, 0, fault)
        })
        .collect();

    let mut learner = Learner {
        team,
        rng: &mut rng,
        rec: &mut rec,
        cursors: &mut cursors,
        world_rng: &mut world_rng,
        step_counter: &mut step_counter,
        update_counter: &mut update_counter,
        store: &mut store,
        opts,
        ckpt,
        rollout,
        track,
        learners,
        n_vehicles,
        slots,
        spawner,
        zombies: Vec::new(),
        dead: vec![false; actors],
        start_episode,
        engine_start: Instant::now(),
        outstanding: vec![0; actors],
        busy_us: vec![0; actors],
        wave_no: 0,
        pending_redispatch: Vec::new(),
        names: LiveNames::new(actors),
    };
    let result = if serial {
        learner.serial_run()
    } else {
        learner.batched_run()
    };
    // Teardown: wake any stalled (sleeping) incarnations, close every
    // command channel, and join all threads — current slots and the
    // zombies left behind by respawns — so no actor outlives the engine.
    let slots = std::mem::take(&mut learner.slots);
    let zombies = std::mem::take(&mut learner.zombies);
    drop(learner);
    shutdown.store(true, Ordering::Relaxed);
    for slot in slots {
        let ActorSlot { tx, rx, handle, .. } = slot;
        drop(tx);
        drop(rx);
        if let Some(h) = handle {
            // An injected panic that was never observed mid-run still
            // surfaces here; the payload is intentionally discarded.
            let _ = h.join();
        }
    }
    for h in zombies {
        let _ = h.join();
    }

    env.set_rng_state(&world_rng[0]);
    team.absorb_cursor(&cursors[0]);
    match result {
        Ok((completed, episodes_run)) => {
            if !completed {
                // Incomplete runs dump the flight recorder on the next
                // flush (stalls and kills already marked themselves; this
                // covers every other early-return path).
                telemetry::mark_faulted();
            }
            Ok(TrainOutcome {
                recorder: rec,
                completed,
                episodes_run,
            })
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use hero_baselines::sac::SacConfig;
    use hero_rl::metrics::Recorder;
    use hero_sim::env::EnvConfig;
    use hero_sim::scenario;

    use crate::config::HeroConfig;
    use crate::skills::SkillLibrary;
    use crate::trainer::train_team;

    fn fixture(n: usize, env_seed: u64) -> (HeroTeam, LaneChangeEnv) {
        let env_cfg = EnvConfig {
            max_steps: 6,
            ..EnvConfig::default()
        };
        let env = scenario::congestion(env_cfg, env_seed);
        let skills = Arc::new(SkillLibrary::untrained(
            env_cfg,
            SacConfig {
                hidden: 8,
                ..SacConfig::default()
            },
            0,
        ));
        let cfg = HeroConfig {
            hidden: 8,
            batch_size: 8,
            warmup: 8,
            ..HeroConfig::default()
        };
        (HeroTeam::new(n, env_cfg.high_dim(), skills, cfg, 1), env)
    }

    fn series_bits(rec: &Recorder, name: &str) -> Vec<u32> {
        rec.series(name)
            .map(|s| s.iter().map(|v| v.to_bits()).collect())
            .unwrap_or_default()
    }

    #[test]
    fn one_actor_serial_matches_sequential_bitwise() {
        let opts = TrainOptions {
            episodes: 3,
            update_every: 2,
            seed: 9,
        };
        let (mut team_a, mut env_a) = fixture(3, 4);
        let rec_a = train_team(&mut team_a, &mut env_a, &opts);
        let (mut team_b, mut env_b) = fixture(3, 4);
        let out = train_team_actor_learner(
            &mut team_b,
            &mut env_b,
            &opts,
            &CheckpointConfig::default(),
            &RolloutOptions::default(),
        )
        .expect("fault-free run cannot lose its fleet");
        assert!(out.completed);
        assert_eq!(out.episodes_run, 3);
        for name in ["reward", "collision", "mean_speed", "critic_loss"] {
            assert_eq!(
                series_bits(&rec_a, name),
                series_bits(&out.recorder, name),
                "series `{name}` diverged from sequential"
            );
        }
        // The env stream advanced identically, so downstream evaluation
        // stays aligned too.
        assert_eq!(env_a.rng_state(), env_b.rng_state());
    }

    #[test]
    fn batched_mode_is_reproducible_run_to_run() {
        let opts = TrainOptions {
            episodes: 5,
            update_every: 2,
            seed: 3,
        };
        let rollout = RolloutOptions {
            actors: 2,
            batch_worlds: 2,
            ..RolloutOptions::default()
        };
        let run = || {
            let (mut team, mut env) = fixture(3, 11);
            train_team_actor_learner(
                &mut team,
                &mut env,
                &opts,
                &CheckpointConfig::default(),
                &rollout,
            )
            .expect("fault-free run cannot lose its fleet")
        };
        let a = run();
        let b = run();
        assert!(a.completed && b.completed);
        assert_eq!(a.episodes_run, 5);
        for name in ["reward", "collision", "mean_speed", "critic_loss"] {
            assert_eq!(
                series_bits(&a.recorder, name),
                series_bits(&b.recorder, name),
                "series `{name}` not reproducible"
            );
        }
    }
}

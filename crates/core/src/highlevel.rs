//! The high-level cooperation layer (Sec. III-C): a *decentralized*
//! actor–critic over options. The critic `Q_h^i(s_h^i, o^i, o^{-i})`
//! conditions on every agent's option; the actor `π_h^i(o^i | s_h^i,
//! ô^{-i})` conditions on the opponent model's predicted option
//! distributions. TD targets plug the opponent model's probabilities into
//! the target critic directly ("we input the option log probabilities of
//! other agents directly into `Q`, rather than sampling").
//!
//! Transitions are SMDP option segments: the reward field carries the
//! accumulated discounted reward `r_{h,t:t+c}` and the bootstrap uses
//! `γ^c`.

use hero_autograd::diagnostics::StepDiagnostics;
use hero_autograd::nn::{Activation, Mlp, Module};
use hero_autograd::optim::{Adam, Optimizer};
use hero_autograd::{
    loss, serialize, zero_grads, CheckpointError, Graph, Parameter, Tensor, TensorPool,
};
use rand::rngs::StdRng;
use rand::Rng;

use hero_baselines::common::UpdateStats;
use hero_rl::buffer::ReplayBuffer;
use hero_rl::snapshot;
use hero_rl::explore::greedy;
use hero_rl::rng::sample_from_logits;
use hero_rl::target::{hard_update, soft_update};
use hero_rl::transition::OptionTransition;

use crate::config::HeroConfig;
use crate::opponent::OpponentModel;

/// A pre-sampled minibatch of option segments for
/// [`HighLevelLearner::update_batch`], produced by
/// [`HighLevelLearner::sample_batch`].
#[derive(Clone, Debug)]
pub struct HighLevelBatch {
    batch: Vec<OptionTransition>,
}

/// The per-agent high-level learner.
#[derive(Debug)]
pub struct HighLevelLearner {
    actor: Mlp,
    critic: Mlp,
    critic_target: Mlp,
    actor_opt: Adam,
    critic_opt: Adam,
    buffer: ReplayBuffer<OptionTransition>,
    gamma: f32,
    tau: f32,
    batch_size: usize,
    warmup: usize,
    entropy_weight: f32,
    n_options: usize,
    n_opponents: usize,
    /// Reused tape arena for update passes (see `Graph::reset`).
    graph: Graph,
}

impl HighLevelLearner {
    /// Creates a learner for `obs_dim` high-level states, `n_options`
    /// options, and `n_opponents` other agents.
    pub fn new(
        obs_dim: usize,
        n_options: usize,
        n_opponents: usize,
        cfg: &HeroConfig,
        rng: &mut StdRng,
    ) -> Self {
        let opp_width = n_opponents * n_options;
        let actor_dims = [obs_dim + opp_width, cfg.hidden, cfg.hidden, n_options];
        let critic_dims = [
            obs_dim + n_options + opp_width,
            cfg.hidden,
            cfg.hidden,
            1,
        ];
        let actor = Mlp::new("hero.actor", &actor_dims, Activation::Relu, rng);
        let critic = Mlp::new("hero.critic", &critic_dims, Activation::Relu, rng);
        let critic_target = Mlp::new("hero.critic_t", &critic_dims, Activation::Relu, rng);
        hard_update(&critic.parameters(), &critic_target.parameters());
        let mut actor_opt = Adam::new(actor.parameters(), cfg.lr);
        let mut critic_opt = Adam::new(critic.parameters(), cfg.lr);
        actor_opt.set_diagnostics(StepDiagnostics::named("actor"));
        critic_opt.set_diagnostics(StepDiagnostics::named("critic"));
        Self {
            actor,
            critic,
            critic_target,
            actor_opt,
            critic_opt,
            buffer: ReplayBuffer::new(cfg.buffer_capacity),
            gamma: cfg.gamma,
            tau: cfg.tau,
            batch_size: cfg.batch_size,
            warmup: cfg.warmup,
            entropy_weight: cfg.actor_entropy_weight,
            n_options,
            n_opponents,
            graph: Graph::new(),
        }
    }

    /// Number of stored option transitions in `D_h^i`.
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    fn actor_input(&self, obs: &[f32], opp_probs: &[Vec<f32>]) -> Vec<f32> {
        assert_eq!(opp_probs.len(), self.n_opponents, "opponent arity mismatch");
        let mut v = obs.to_vec();
        for p in opp_probs {
            assert_eq!(p.len(), self.n_options, "opponent distribution width");
            v.extend_from_slice(p);
        }
        v
    }

    fn critic_input(&self, obs: &[f32], option: usize, others: &[Vec<f32>]) -> Vec<f32> {
        let mut v = obs.to_vec();
        for k in 0..self.n_options {
            v.push(if k == option { 1.0 } else { 0.0 });
        }
        for p in others {
            v.extend_from_slice(p);
        }
        v
    }

    fn one_hot(&self, option: usize) -> Vec<f32> {
        let mut v = vec![0.0; self.n_options];
        v[option] = 1.0;
        v
    }

    /// Policy logits given the own state and predicted opponent options.
    pub fn logits(&self, obs: &[f32], opp_probs: &[Vec<f32>]) -> Vec<f32> {
        let input = self.actor_input(obs, opp_probs);
        self.actor
            .infer(&Tensor::from_vec(vec![1, input.len()], input))
            .into_data()
    }

    /// Policy logits for a batch of `[n, obs_dim]` states with per-opponent
    /// `[n, n_options]` predicted distributions, in one actor forward pass.
    /// Row `r` of the result matches [`HighLevelLearner::logits`] on row `r`
    /// of the inputs up to matmul accumulation order (the batched rollout
    /// engine's documented tolerance; the scalar path is used whenever
    /// bitwise equality with sequential training is required).
    pub fn logits_batch(&self, obs: &Tensor, opp_probs: &[Tensor]) -> Vec<Vec<f32>> {
        assert_eq!(opp_probs.len(), self.n_opponents, "opponent arity mismatch");
        let input = concat_rows(obs, opp_probs);
        let out = self.actor.infer(&input);
        (0..obs.shape()[0]).map(|r| out.row(r).to_vec()).collect()
    }

    /// Number of high-level options in the action space.
    pub fn n_options(&self) -> usize {
        self.n_options
    }

    /// [`HighLevelLearner::logits_batch`] through the inference-only
    /// forward path: no autodiff graph, actor activations recycled via
    /// `pool`. Bitwise identical to the graph path under strict kernels.
    pub fn logits_batch_in(
        &self,
        obs: &Tensor,
        opp_probs: &[Tensor],
        pool: &mut TensorPool,
    ) -> Vec<Vec<f32>> {
        assert_eq!(opp_probs.len(), self.n_opponents, "opponent arity mismatch");
        let input = concat_rows(obs, opp_probs);
        let out = self.actor.infer_in(&input, pool);
        let rows = (0..obs.shape()[0]).map(|r| out.row(r).to_vec()).collect();
        pool.put(out.into_data());
        rows
    }

    /// Selects an option: greedy when `explore` is false; otherwise
    /// sampled from the softmax policy with ε-uniform mixing.
    pub fn select_option(
        &self,
        obs: &[f32],
        opp_probs: &[Vec<f32>],
        rng: &mut StdRng,
        explore: bool,
        epsilon: f32,
    ) -> usize {
        let logits = self.logits(obs, opp_probs);
        self.select_from_logits(&logits, rng, explore, epsilon)
    }

    /// The selection half of [`HighLevelLearner::select_option`], operating
    /// on precomputed logits. Consumes randomness in exactly the same
    /// order: one `gen::<f32>()` for the ε gate, then either a uniform
    /// `gen_range` or a softmax sample.
    pub fn select_from_logits(
        &self,
        logits: &[f32],
        rng: &mut StdRng,
        explore: bool,
        epsilon: f32,
    ) -> usize {
        if !explore {
            return greedy(logits);
        }
        if rng.gen::<f32>() < epsilon {
            rng.gen_range(0..self.n_options)
        } else {
            sample_from_logits(rng, logits)
        }
    }

    /// Stores a completed option segment in `D_h^i`.
    pub fn store(&mut self, t: OptionTransition) {
        self.buffer.push(t);
    }

    /// Critic estimate `Q_h(s, o, o^{-i})` with one-hot opponent options.
    pub fn q_value(&self, obs: &[f32], option: usize, other_options: &[usize]) -> f32 {
        let others: Vec<Vec<f32>> = other_options.iter().map(|&o| self.one_hot(o)).collect();
        let input = self.critic_input(obs, option, &others);
        self.critic
            .infer(&Tensor::from_vec(vec![1, input.len()], input))
            .into_data()[0]
    }

    /// One actor–critic update using the opponent model for TD targets;
    /// `None` before warm-up.
    pub fn update(&mut self, rng: &mut StdRng, opponent: &OpponentModel) -> Option<UpdateStats> {
        let batch = self.sample_batch(rng)?;
        Some(self.update_batch(&batch, opponent))
    }

    /// Draws the next update's minibatch, or `None` before warm-up. The
    /// only RNG-consuming half of an update (see
    /// [`OpponentModel::sample_batch`] for the contract).
    pub fn sample_batch(&self, rng: &mut StdRng) -> Option<HighLevelBatch> {
        let need = self.warmup.max(self.batch_size.min(self.buffer.capacity())).min(2048);
        if self.buffer.len() < need.max(8) {
            return None;
        }
        let batch: Vec<OptionTransition> = {
            let _span = hero_rl::telemetry::span("replay_sample");
            self.buffer
                .sample(rng, self.batch_size.min(self.buffer.len().max(8)))
                .into_iter()
                .cloned()
                .collect()
        };
        hero_rl::telemetry::counter_add("transitions_sampled", batch.len() as u64);
        Some(HighLevelBatch { batch })
    }

    /// The compute half of [`HighLevelLearner::update`]: critic regression
    /// and counterfactual-baseline policy gradient on the pre-sampled
    /// `batch`. Consumes no randomness.
    pub fn update_batch(
        &mut self,
        batch: &HighLevelBatch,
        opponent: &OpponentModel,
    ) -> UpdateStats {
        let batch = &batch.batch;
        let n = batch.len();
        let obs_dim = batch[0].obs.len();

        // Batched tensors of the segment start/end states.
        let obs_rows: Vec<&[f32]> = batch.iter().map(|t| t.obs.as_slice()).collect();
        let next_rows: Vec<&[f32]> = batch.iter().map(|t| t.next_obs.as_slice()).collect();
        let obs_t = stack_refs(&obs_rows, obs_dim);
        let next_t = stack_refs(&next_rows, obs_dim);

        // TD target: r_{t:t+c} + γ^c · Q_target(s', π_h(s', ô'), ô'),
        // with the opponent model's probabilities fed straight into the
        // target critic (no sampling) — all batched.
        let opp_next = opponent.predict_probs_batch(&next_t);
        let next_actor_in = concat_rows(&next_t, &opp_next);
        let next_logits = self.actor.infer(&next_actor_in);
        let mut target_rows = Vec::with_capacity(n);
        for row in 0..n {
            let next_o = greedy(next_logits.row(row));
            let mut v = next_t.row(row).to_vec();
            v.extend(self.one_hot(next_o));
            for opp in &opp_next {
                v.extend_from_slice(opp.row(row));
            }
            target_rows.push(v);
        }
        let q_next = self.critic_target.infer(&stack(&target_rows));
        let targets: Vec<f32> = batch
            .iter()
            .enumerate()
            .map(|(row, t)| {
                if t.done {
                    t.reward
                } else {
                    t.reward + self.gamma.powi(t.duration as i32) * q_next.row(row)[0]
                }
            })
            .collect();

        // Critic regression on observed joint options.
        let critic_rows: Vec<Vec<f32>> = batch
            .iter()
            .map(|t| {
                let others: Vec<Vec<f32>> =
                    t.other_options.iter().map(|&o| self.one_hot(o)).collect();
                self.critic_input(&t.obs, t.option, &others)
            })
            .collect();
        let critic_loss = {
            // One graph arena serves both passes of every update (see
            // `Graph::reset`): node and gradient buffers are recycled, so
            // steady-state updates stop allocating per minibatch.
            let mut g = std::mem::take(&mut self.graph);
            g.reset();
            let x = g.input(stack(&critic_rows));
            let q = self.critic.forward(&mut g, x);
            let y = g.input(Tensor::from_vec(vec![n, 1], targets));
            let l = loss::mse(&mut g, q, y);
            let v = g.value(l).item();
            if hero_rl::telemetry::is_enabled() {
                // Per-sample TD error and Q estimates (see DESIGN.md
                // "learning-dynamics metrics": td_error, q/high).
                let pred = g.value(q);
                let target = g.value(y);
                for row in 0..n {
                    let p = pred.row(row)[0] as f64;
                    hero_rl::telemetry::observe("td_error", target.row(row)[0] as f64 - p);
                    hero_rl::telemetry::observe("q/high", p);
                }
            }
            g.backward(l);
            self.critic_opt.step();
            self.graph = g;
            v
        };

        // Advantage = Q(s, o_t, o^{-i}_t) − Σ_o π(o)·Q(s, o, o^{-i}_t)
        // (counterfactual-style baseline for variance reduction); one
        // batched critic pass per option.
        let opp_now = opponent.predict_probs_batch(&obs_t);
        let actor_in = concat_rows(&obs_t, &opp_now);
        let logits_t = self.actor.infer(&actor_in);
        let q_per_option: Vec<Tensor> = (0..self.n_options)
            .map(|o| {
                let rows: Vec<Vec<f32>> = batch
                    .iter()
                    .map(|t| {
                        let others: Vec<Vec<f32>> =
                            t.other_options.iter().map(|&x| self.one_hot(x)).collect();
                        self.critic_input(&t.obs, o, &others)
                    })
                    .collect();
                self.critic.infer(&stack(&rows))
            })
            .collect();
        let mut actor_rows = Vec::with_capacity(n);
        let mut advantages = Vec::with_capacity(n);
        let mut taken = Vec::with_capacity(n);
        for (row, t) in batch.iter().enumerate() {
            let probs = hero_rl::rng::softmax(logits_t.row(row));
            let q_all: Vec<f32> = (0..self.n_options)
                .map(|o| q_per_option[o].row(row)[0])
                .collect();
            let baseline: f32 = probs.iter().zip(&q_all).map(|(p, q)| p * q).sum();
            advantages.push(q_all[t.option] - baseline);
            taken.push(t.option);
            actor_rows.push(actor_in.row(row).to_vec());
        }
        let actor_loss = {
            let mut g = std::mem::take(&mut self.graph);
            g.reset();
            let x = g.input(stack(&actor_rows));
            let logits = self.actor.forward(&mut g, x);
            let logp = g.log_softmax(logits);
            let mask = g.input(Tensor::one_hot(&taken, self.n_options));
            let picked = g.mul(logp, mask);
            let logp_u = g.sum_rows(picked);
            let adv = g.input(Tensor::from_vec(vec![n, 1], advantages));
            let weighted = g.mul(logp_u, adv);
            let pg = g.mean(weighted);
            let pg_loss = g.neg(pg);
            let entropy = loss::categorical_entropy(&mut g, logits);
            let ent_term = g.scale(entropy, -self.entropy_weight);
            let l = g.add(pg_loss, ent_term);
            let v = g.value(l).item();
            g.backward(l);
            self.actor_opt.step();
            zero_grads(self.critic_opt.parameters());
            self.graph = g;
            v
        };

        soft_update(
            &self.critic.parameters(),
            &self.critic_target.parameters(),
            self.tau,
        );
        UpdateStats {
            critic_loss,
            actor_loss,
        }
    }

    /// Trainable parameters (actor then critic) for checkpointing.
    pub fn parameters(&self) -> Vec<Parameter> {
        let mut p = self.actor.parameters();
        p.extend(self.critic.parameters());
        p
    }

    /// Captures the learner's full state — networks, target critic, both
    /// Adam optimizers, and the option-segment replay buffer — as named
    /// sections (relative names; the caller prefixes them per agent).
    pub fn save_state(&self) -> Vec<(String, Vec<u8>)> {
        vec![
            ("params".to_string(), serialize::encode_params(&self.parameters())),
            (
                "critic_target".to_string(),
                serialize::encode_params(&self.critic_target.parameters()),
            ),
            (
                "actor_opt".to_string(),
                serialize::encode_optimizer(&self.actor_opt.export_state()),
            ),
            (
                "critic_opt".to_string(),
                serialize::encode_optimizer(&self.critic_opt.export_state()),
            ),
            ("buffer".to_string(), snapshot::encode_replay(&self.buffer)),
        ]
    }

    /// Restores state captured by [`HighLevelLearner::save_state`] into a
    /// learner built with the same dimensions and config.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] when a section is missing, malformed, or
    /// shaped for a different architecture.
    pub fn load_state(&mut self, sections: &[(String, Vec<u8>)]) -> Result<(), CheckpointError> {
        let actor_opt =
            serialize::decode_optimizer(serialize::require_section(sections, "actor_opt")?)?;
        let critic_opt =
            serialize::decode_optimizer(serialize::require_section(sections, "critic_opt")?)?;
        let buffer = snapshot::decode_replay::<OptionTransition>(serialize::require_section(
            sections, "buffer",
        )?)
        .map_err(|e| CheckpointError::Malformed(format!("high-level buffer: {e}")))?;
        serialize::decode_params(
            serialize::require_section(sections, "params")?,
            &self.parameters(),
        )?;
        serialize::decode_params(
            serialize::require_section(sections, "critic_target")?,
            &self.critic_target.parameters(),
        )?;
        self.actor_opt.import_state(actor_opt)?;
        self.critic_opt.import_state(critic_opt)?;
        self.buffer = buffer;
        Ok(())
    }
}

fn stack(rows: &[Vec<f32>]) -> Tensor {
    let n = rows.len();
    let d = rows[0].len();
    let mut data = Vec::with_capacity(n * d);
    for r in rows {
        data.extend_from_slice(r);
    }
    Tensor::from_vec(vec![n, d], data)
}

fn stack_refs(rows: &[&[f32]], d: usize) -> Tensor {
    let mut data = Vec::with_capacity(rows.len() * d);
    for r in rows {
        data.extend_from_slice(r);
    }
    Tensor::from_vec(vec![rows.len(), d], data)
}

/// Concatenates a `[n, a]` tensor with several `[n, b_i]` tensors along
/// columns.
fn concat_rows(base: &Tensor, extras: &[Tensor]) -> Tensor {
    let n = base.shape()[0];
    let width = base.shape()[1] + extras.iter().map(|t| t.shape()[1]).sum::<usize>();
    let mut data = Vec::with_capacity(n * width);
    for row in 0..n {
        data.extend_from_slice(base.row(row));
        for e in extras {
            data.extend_from_slice(e.row(row));
        }
    }
    Tensor::from_vec(vec![n, width], data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small_cfg() -> HeroConfig {
        HeroConfig {
            hidden: 16,
            batch_size: 32,
            warmup: 32,
            ..HeroConfig::default()
        }
    }

    fn uniform_opp(n_opponents: usize, n_options: usize) -> Vec<Vec<f32>> {
        vec![vec![1.0 / n_options as f32; n_options]; n_opponents]
    }

    fn opponent(rng: &mut StdRng) -> OpponentModel {
        OpponentModel::new(1, 3, 4, 16, 0.01, 0.01, 1000, 32, rng)
    }

    #[test]
    fn select_option_in_range() {
        let mut rng = StdRng::seed_from_u64(0);
        let hl = HighLevelLearner::new(3, 4, 1, &small_cfg(), &mut rng);
        let opp = uniform_opp(1, 4);
        for _ in 0..20 {
            let o = hl.select_option(&[0.1, 0.2, 0.3], &opp, &mut rng, true, 0.1);
            assert!(o < 4);
        }
        let greedy_o = hl.select_option(&[0.1, 0.2, 0.3], &opp, &mut rng, false, 0.0);
        let greedy_o2 = hl.select_option(&[0.1, 0.2, 0.3], &opp, &mut rng, false, 0.0);
        assert_eq!(greedy_o, greedy_o2);
    }

    #[test]
    fn actor_conditions_on_opponent_prediction() {
        let mut rng = StdRng::seed_from_u64(1);
        let hl = HighLevelLearner::new(3, 4, 1, &small_cfg(), &mut rng);
        let a = hl.logits(&[0.1, 0.2, 0.3], &[vec![1.0, 0.0, 0.0, 0.0]]);
        let b = hl.logits(&[0.1, 0.2, 0.3], &[vec![0.0, 0.0, 0.0, 1.0]]);
        assert_ne!(a, b, "different opponent predictions must change logits");
    }

    #[test]
    fn no_update_before_warmup() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut hl = HighLevelLearner::new(3, 4, 1, &small_cfg(), &mut rng);
        let opp = opponent(&mut rng);
        assert!(hl.update(&mut rng, &opp).is_none());
    }

    fn segment(option: usize, other: usize, reward: f32) -> OptionTransition {
        OptionTransition {
            obs: vec![1.0, 0.0, 0.0],
            option,
            other_options: vec![other],
            reward,
            duration: 3,
            next_obs: vec![0.0, 1.0, 0.0],
            done: true,
        }
    }

    #[test]
    fn learns_to_prefer_rewarded_option() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut hl = HighLevelLearner::new(3, 4, 1, &small_cfg(), &mut rng);
        let opp = opponent(&mut rng);
        // Option 2 earns 1, everything else 0 (regardless of opponent).
        for _ in 0..30 {
            for o in 0..4 {
                hl.store(segment(o, 0, if o == 2 { 1.0 } else { 0.0 }));
            }
        }
        for _ in 0..200 {
            hl.update(&mut rng, &opp).unwrap();
        }
        let opp_probs = uniform_opp(1, 4);
        let chosen = hl.select_option(&[1.0, 0.0, 0.0], &opp_probs, &mut rng, false, 0.0);
        assert_eq!(chosen, 2, "logits: {:?}", hl.logits(&[1.0, 0.0, 0.0], &opp_probs));
    }

    #[test]
    fn q_value_reflects_training_signal() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut hl = HighLevelLearner::new(3, 4, 1, &small_cfg(), &mut rng);
        let opp = opponent(&mut rng);
        for _ in 0..30 {
            hl.store(segment(1, 0, 2.0));
            hl.store(segment(3, 0, -2.0));
        }
        for _ in 0..200 {
            hl.update(&mut rng, &opp);
        }
        let q_good = hl.q_value(&[1.0, 0.0, 0.0], 1, &[0]);
        let q_bad = hl.q_value(&[1.0, 0.0, 0.0], 3, &[0]);
        assert!(
            q_good > q_bad + 0.5,
            "Q(good)={q_good} must exceed Q(bad)={q_bad}"
        );
    }

    #[test]
    fn smdp_discounting_uses_duration() {
        // Two identical segments but different durations: with done=false
        // and a positive bootstrap the shorter duration discounts less.
        // Verified indirectly through the math: γ^1 > γ^5.
        let cfg = small_cfg();
        assert!(cfg.gamma.powi(1) > cfg.gamma.powi(5));
    }
}

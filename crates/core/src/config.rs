//! HERO configuration; defaults reproduce the paper's Table I.

use hero_rl::schedule::Schedule;

/// How options terminate across agents (Sec. III-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TerminationMode {
    /// Each agent checks its own termination condition independently —
    /// the paper's choice for fully distributed systems.
    #[default]
    Asynchronous,
    /// All agents interrupt and re-select together whenever *any* agent's
    /// option terminates (ablation; infeasible in a distributed
    /// deployment).
    Synchronous,
}

/// Hyper-parameters of the full HERO agent. Defaults are the paper's
/// Table I values.
#[derive(Clone, Copy, Debug)]
pub struct HeroConfig {
    /// Training episodes (Table I: 14 000).
    pub training_episodes: usize,
    /// Episode length in steps (Table I: 30).
    pub episode_length: usize,
    /// Replay capacity (Table I: 100 000).
    pub buffer_capacity: usize,
    /// Mini-batch size (Table I: 1024).
    pub batch_size: usize,
    /// Learning rate (Table I: 0.01).
    pub lr: f32,
    /// Discount factor γ (Table I: 0.95).
    pub gamma: f32,
    /// Hidden layer width (Table I: 32).
    pub hidden: usize,
    /// Target-network update rate τ (Table I: 0.01).
    pub tau: f32,
    /// Entropy weight λ of the opponent-model loss (Sec. III-C).
    pub opponent_entropy_weight: f32,
    /// Entropy regularization on the high-level actor.
    pub actor_entropy_weight: f32,
    /// Maximum steps an in-lane option runs before its β fires.
    pub in_lane_option_duration: usize,
    /// Maximum steps a lane-change option may run.
    pub lane_change_budget: usize,
    /// Minimum stored option-transitions before high-level updates begin.
    pub warmup: usize,
    /// ε schedule for high-level exploration over option *selections*:
    /// with probability ε a uniform option is taken, otherwise one is
    /// sampled from the softmax policy. Annealed like the baselines'
    /// ε-greedy so late training reflects the learned policy.
    pub exploration: Schedule,
    /// Option-termination mode.
    pub termination: TerminationMode,
    /// When `false`, the opponent model is disabled: predictions are
    /// uniform and never trained (ablation, Sec. III-C).
    pub use_opponent_model: bool,
    /// Run the per-agent update phase on scoped threads (one per agent).
    /// Each agent owns its networks, optimizers, and pre-sampled
    /// minibatches, so updates are embarrassingly parallel; batches are
    /// sampled and telemetry is committed on the driving thread in agent
    /// order, keeping results bit-identical to the sequential path (see
    /// DESIGN.md "Performance").
    pub parallel_update: bool,
}

impl Default for HeroConfig {
    fn default() -> Self {
        Self {
            training_episodes: 14_000,
            episode_length: 30,
            buffer_capacity: 100_000,
            batch_size: 1024,
            lr: 0.01,
            gamma: 0.95,
            hidden: 32,
            tau: 0.01,
            opponent_entropy_weight: 0.01,
            actor_entropy_weight: 0.01,
            in_lane_option_duration: 3,
            lane_change_budget: 9,
            warmup: 256,
            exploration: Schedule::Linear {
                start: 0.3,
                end: 0.02,
                steps: 12_000,
            },
            termination: TerminationMode::Asynchronous,
            use_opponent_model: true,
            parallel_update: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The defaults must match the paper's Table I exactly.
    #[test]
    fn defaults_match_table_one() {
        let c = HeroConfig::default();
        assert_eq!(c.training_episodes, 14_000);
        assert_eq!(c.episode_length, 30);
        assert_eq!(c.buffer_capacity, 100_000);
        assert_eq!(c.batch_size, 1024);
        assert_eq!(c.lr, 0.01);
        assert_eq!(c.gamma, 0.95);
        assert_eq!(c.hidden, 32);
        assert_eq!(c.tau, 0.01);
        assert_eq!(c.termination, TerminationMode::Asynchronous);
    }
}

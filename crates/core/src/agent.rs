//! One HERO agent: the high-level option learner, the opponent model, and
//! the SMDP segment bookkeeping that turns environment steps into option
//! transitions (Algorithm 1).

use hero_autograd::CheckpointError;
use hero_baselines::common::UpdateStats;
use hero_rl::snapshot::{self, Codec};
use rand::rngs::StdRng;

use hero_sim::options::DrivingOption;
use hero_sim::track::Track;
use hero_sim::vehicle::VehicleState;

use crate::config::HeroConfig;
use crate::highlevel::HighLevelLearner;
use crate::opponent::OpponentModel;
use crate::options::ActiveOption;

/// Pre-sampled minibatches for one agent's update pass; produced by
/// [`HeroAgent::prepare_update`], consumed by [`HeroAgent::apply_update`].
#[derive(Debug)]
pub struct PreparedUpdate {
    opponent: Option<crate::opponent::OpponentBatch>,
    high: Option<crate::highlevel::HighLevelBatch>,
}

impl PreparedUpdate {
    /// Whether either learner has a batch to train on.
    pub fn has_work(&self) -> bool {
        self.opponent.is_some() || self.high.is_some()
    }
}

/// Accumulates one option segment between selection and termination.
#[derive(Clone, Debug)]
struct Segment {
    start_obs: Vec<f32>,
    others_at_start: Vec<usize>,
    reward: f32,
    discount: f32,
}

/// One agent's option-execution state for one world: the active option
/// and its half-open SMDP segment.
///
/// Historically this state lived inside [`HeroAgent`], which tied each
/// agent to exactly one world. The batched rollout engine steps many
/// worlds concurrently, so the per-world state is externalized: the
/// learner owns one cursor per (world, agent) and passes it to the
/// `*_in` method variants. The cursor-free methods still operate on the
/// agent's own internal cursor and behave exactly as before.
#[derive(Clone, Debug, Default)]
pub struct AgentCursor {
    active: Option<ActiveOption>,
    segment: Option<Segment>,
}

impl AgentCursor {
    /// A fresh cursor with no active option.
    pub fn new() -> Self {
        Self::default()
    }

    /// The currently executing option, if any.
    pub fn current_option(&self) -> Option<DrivingOption> {
        self.active.map(|a| a.option)
    }

    /// The active option's execution state (target lane etc.).
    pub fn active(&self) -> Option<&ActiveOption> {
        self.active.as_ref()
    }

    /// Discards any half-finished option state (between episodes).
    pub fn clear(&mut self) {
        self.active = None;
        self.segment = None;
    }

    /// Whether no option (and no segment) is in flight.
    pub fn is_idle(&self) -> bool {
        self.active.is_none() && self.segment.is_none()
    }
}

/// One HERO agent (Fig. 1's two-layer stack minus the shared skill
/// library, which lives in [`crate::skills::SkillLibrary`]).
#[derive(Debug)]
pub struct HeroAgent {
    high: HighLevelLearner,
    opponent: OpponentModel,
    cursor: AgentCursor,
    cfg: HeroConfig,
    /// Number of option selections made so far (drives the ε schedule).
    selections: usize,
    /// Cumulative per-opponent prediction-loss traces (Fig. 10).
    opponent_losses: Vec<Vec<f32>>,
    /// Telemetry namespace label (e.g. `agent0`); see
    /// [`HeroAgent::set_metric_label`].
    metric_label: String,
}

impl HeroAgent {
    /// Creates an agent for `obs_dim` high-level observations and
    /// `n_opponents` other agents.
    pub fn new(obs_dim: usize, n_opponents: usize, cfg: HeroConfig, rng: &mut StdRng) -> Self {
        let high = HighLevelLearner::new(obs_dim, DrivingOption::COUNT, n_opponents, &cfg, rng);
        let mut opponent = OpponentModel::new(
            n_opponents,
            obs_dim,
            DrivingOption::COUNT,
            cfg.hidden,
            cfg.lr,
            cfg.opponent_entropy_weight,
            cfg.buffer_capacity,
            cfg.batch_size.min(256),
            rng,
        );
        opponent.set_informative(cfg.use_opponent_model);
        Self {
            high,
            opponent,
            cursor: AgentCursor::new(),
            cfg,
            selections: 0,
            opponent_losses: vec![Vec::new(); n_opponents],
            metric_label: "agent".to_string(),
        }
    }

    /// Sets the label under which this agent's learning-health metrics are
    /// recorded (`entropy/<label>`, `reward/option_segment`). The trainer
    /// assigns `agent0`, `agent1`, … so per-agent curves stay separable.
    pub fn set_metric_label(&mut self, label: impl Into<String>) {
        self.metric_label = label.into();
    }

    /// The currently executing option, if any.
    pub fn current_option(&self) -> Option<DrivingOption> {
        self.cursor.current_option()
    }

    /// The active option's execution state (target lane etc.).
    pub fn active(&self) -> Option<&ActiveOption> {
        self.cursor.active()
    }

    /// The high-level learner (e.g. for checkpointing or inspection).
    pub fn high_level(&self) -> &HighLevelLearner {
        &self.high
    }

    /// The opponent model.
    pub fn opponent_model(&self) -> &OpponentModel {
        &self.opponent
    }

    /// Per-opponent NLL loss traces collected across updates (Fig. 10).
    pub fn opponent_loss_traces(&self) -> &[Vec<f32>] {
        &self.opponent_losses
    }

    /// Clears any half-finished option state (call between episodes).
    pub fn begin_episode(&mut self) {
        self.cursor.clear();
    }

    /// Ensures an option is active, selecting a new one from the actor
    /// (conditioned on the opponent model's predictions) when none is.
    /// Returns the option that will execute this step.
    ///
    /// `others_last` are the most recent *observed* options of the other
    /// agents (`o^{-i}_{1:t-1}` in the paper).
    pub fn ensure_option(
        &mut self,
        high_obs: &[f32],
        state: &VehicleState,
        track: &Track,
        others_last: &[usize],
        rng: &mut StdRng,
        explore: bool,
    ) -> DrivingOption {
        let mut cur = std::mem::take(&mut self.cursor);
        let option = self.ensure_option_in(&mut cur, high_obs, state, track, others_last, rng, explore);
        self.cursor = cur;
        option
    }

    /// [`HeroAgent::ensure_option`] against an external per-world
    /// [`AgentCursor`]. Consumes randomness and emits telemetry in exactly
    /// the same order as the internal-cursor path.
    #[allow(clippy::too_many_arguments)]
    pub fn ensure_option_in(
        &mut self,
        cur: &mut AgentCursor,
        high_obs: &[f32],
        state: &VehicleState,
        track: &Track,
        others_last: &[usize],
        rng: &mut StdRng,
        explore: bool,
    ) -> DrivingOption {
        if cur.active.is_none() {
            let opp_probs = self.opponent.predict_probs(high_obs);
            let logits = self.high.logits(high_obs, &opp_probs);
            self.start_option_from_logits(cur, &logits, high_obs, state, track, others_last, rng, explore);
        }
        cur.active.expect("option just ensured").option
    }

    /// [`HeroAgent::ensure_option_in`] with the policy logits already
    /// computed (the batched rollout engine runs one forward pass over all
    /// worlds and feeds each row back through here). RNG draws and
    /// telemetry are identical to the scalar path; only the logits bits may
    /// differ (batched vs single-row matmul accumulation order).
    #[allow(clippy::too_many_arguments)]
    pub fn ensure_option_from_logits(
        &mut self,
        cur: &mut AgentCursor,
        logits: &[f32],
        high_obs: &[f32],
        state: &VehicleState,
        track: &Track,
        others_last: &[usize],
        rng: &mut StdRng,
        explore: bool,
    ) -> DrivingOption {
        if cur.active.is_none() {
            self.start_option_from_logits(cur, logits, high_obs, state, track, others_last, rng, explore);
        }
        cur.active.expect("option just ensured").option
    }

    /// Policy logits for a batch of high-level observations in one forward
    /// pass each through the opponent model and the actor. Row `r` of the
    /// result corresponds to `rows[r]`.
    pub fn batch_logits(&self, rows: &[&[f32]]) -> Vec<Vec<f32>> {
        if rows.is_empty() {
            return Vec::new();
        }
        let d = rows[0].len();
        let mut flat = Vec::with_capacity(rows.len() * d);
        for row in rows {
            assert_eq!(row.len(), d, "ragged observation batch");
            flat.extend_from_slice(row);
        }
        let obs = hero_autograd::Tensor::from_vec(vec![rows.len(), d], flat);
        let opp = self.opponent.predict_probs_batch(&obs);
        self.high.logits_batch(&obs, &opp)
    }

    /// [`HeroAgent::batch_logits`] through the inference-only forward
    /// path: no autodiff graphs, activations recycled via `pool`. This is
    /// the serving daemon's hot path — under strict kernels the logits
    /// are bitwise identical to [`HeroAgent::batch_logits`], and row `r`
    /// of an `[n, d]` batch is bitwise identical to a 1-row call on
    /// `rows[r]` alone.
    ///
    /// # Panics
    ///
    /// Panics on a ragged batch (rows of differing widths).
    pub fn batch_logits_in(
        &self,
        rows: &[&[f32]],
        pool: &mut hero_autograd::TensorPool,
    ) -> Vec<Vec<f32>> {
        if rows.is_empty() {
            return Vec::new();
        }
        let d = rows[0].len();
        let mut flat = Vec::with_capacity(rows.len() * d);
        for row in rows {
            assert_eq!(row.len(), d, "ragged observation batch");
            flat.extend_from_slice(row);
        }
        let obs = hero_autograd::Tensor::from_vec(vec![rows.len(), d], flat);
        let opp = self.opponent.predict_probs_batch_in(&obs, pool);
        self.high.logits_batch_in(&obs, &opp, pool)
    }

    #[allow(clippy::too_many_arguments)]
    fn start_option_from_logits(
        &mut self,
        cur: &mut AgentCursor,
        logits: &[f32],
        high_obs: &[f32],
        state: &VehicleState,
        track: &Track,
        others_last: &[usize],
        rng: &mut StdRng,
        explore: bool,
    ) {
        let epsilon = self.cfg.exploration.value(self.selections);
        self.selections += 1;
        let idx = self.high.select_from_logits(logits, rng, explore, epsilon);
        if hero_rl::telemetry::is_enabled() {
            // Policy entropy at selection time — the collapse gauge
            // (DESIGN.md "learning-dynamics metrics": entropy/<agent>).
            let probs = hero_rl::rng::softmax(logits);
            let entropy: f64 = -probs
                .iter()
                .filter(|&&p| p > 0.0)
                .map(|&p| (p as f64) * (p as f64).ln())
                .sum::<f64>();
            hero_rl::telemetry::observe_dyn(
                &format!("entropy/{}", self.metric_label),
                entropy,
            );
        }
        let option = DrivingOption::from_index(idx);
        cur.active = Some(ActiveOption::start(option, state, track));
        cur.segment = Some(Segment {
            start_obs: high_obs.to_vec(),
            others_at_start: others_last.to_vec(),
            reward: 0.0,
            discount: 1.0,
        });
    }

    /// Records the outcome of one environment step while the current
    /// option executes: accumulates the discounted reward, feeds the
    /// opponent model, advances the termination clock, and — when the
    /// option's β fires (or the episode ends) — closes the SMDP segment
    /// into the high-level buffer.
    ///
    /// Returns `true` when the option terminated at this step.
    ///
    /// # Panics
    ///
    /// Panics when called with no active option.
    pub fn record_step(
        &mut self,
        pre_obs: &[f32],
        others_during: &[usize],
        reward: f32,
        next_obs: &[f32],
        next_state: &VehicleState,
        track: &Track,
        done: bool,
    ) -> bool {
        let mut cur = std::mem::take(&mut self.cursor);
        let terminated = self.record_step_in(
            &mut cur, pre_obs, others_during, reward, next_obs, next_state, track, done,
        );
        self.cursor = cur;
        terminated
    }

    /// [`HeroAgent::record_step`] against an external per-world
    /// [`AgentCursor`].
    ///
    /// # Panics
    ///
    /// Panics when the cursor holds no active option.
    #[allow(clippy::too_many_arguments)]
    pub fn record_step_in(
        &mut self,
        cur: &mut AgentCursor,
        pre_obs: &[f32],
        others_during: &[usize],
        reward: f32,
        next_obs: &[f32],
        next_state: &VehicleState,
        track: &Track,
        done: bool,
    ) -> bool {
        let active = cur.active.as_mut().expect("record_step without active option");
        let segment = cur.segment.as_mut().expect("segment matches active option");
        self.opponent.observe(pre_obs.to_vec(), others_during.to_vec());
        segment.reward += segment.discount * reward;
        segment.discount *= self.cfg.gamma;
        active.tick();
        let terminated = done || active.terminated(next_state, track, &self.cfg);
        if terminated {
            self.close_segment_in(cur, next_obs, done);
        }
        terminated
    }

    /// Evaluation-time step bookkeeping: advances the active option and
    /// applies its termination condition *without* storing anything into
    /// the replay or opponent-model buffers.
    pub fn observe_step_eval(
        &mut self,
        next_state: &VehicleState,
        track: &Track,
        done: bool,
    ) {
        if let Some(active) = self.cursor.active.as_mut() {
            active.tick();
            if done || active.terminated(next_state, track, &self.cfg) {
                self.cursor.clear();
            }
        }
    }

    /// Forcibly terminates the active option (synchronous-termination
    /// ablation, Sec. III-B). No-op when no option is active.
    pub fn force_terminate(&mut self, next_obs: &[f32], done: bool) {
        let mut cur = std::mem::take(&mut self.cursor);
        self.force_terminate_in(&mut cur, next_obs, done);
        self.cursor = cur;
    }

    /// [`HeroAgent::force_terminate`] against an external per-world
    /// [`AgentCursor`].
    pub fn force_terminate_in(&mut self, cur: &mut AgentCursor, next_obs: &[f32], done: bool) {
        if cur.active.is_some() {
            self.close_segment_in(cur, next_obs, done);
        }
    }

    fn close_segment_in(&mut self, cur: &mut AgentCursor, next_obs: &[f32], done: bool) {
        let active = cur.active.take().expect("close_segment with active option");
        let segment = cur.segment.take().expect("segment matches active option");
        hero_rl::telemetry::observe("reward/option_segment", segment.reward as f64);
        hero_rl::telemetry::observe("option/duration", active.elapsed.max(1) as f64);
        self.high.store(hero_rl::transition::OptionTransition {
            obs: segment.start_obs,
            option: active.option.index(),
            other_options: segment.others_at_start,
            reward: segment.reward,
            duration: active.elapsed.max(1),
            next_obs: next_obs.to_vec(),
            done,
        });
    }

    /// One learning step: updates the opponent models and the high-level
    /// actor–critic. Returns the high-level stats when an update ran.
    pub fn update(&mut self, rng: &mut StdRng) -> Option<UpdateStats> {
        let prepared = self.prepare_update(rng);
        self.apply_update(prepared)
    }

    /// The RNG-consuming half of [`HeroAgent::update`]: draws the opponent
    /// and high-level minibatches (in that order — the order the
    /// sequential update consumes randomness). A coordinator calls this
    /// for every agent on one thread, then runs the compute halves
    /// ([`HeroAgent::apply_update`]) in parallel without perturbing any
    /// random stream.
    pub fn prepare_update(&self, rng: &mut StdRng) -> PreparedUpdate {
        let opponent = {
            let _span = hero_rl::telemetry::span("opponent_model");
            self.opponent.sample_batch(rng)
        };
        let high = {
            let _span = hero_rl::telemetry::span("actor_critic");
            self.high.sample_batch(rng)
        };
        PreparedUpdate { opponent, high }
    }

    /// The compute half of [`HeroAgent::update`]: trains on the
    /// pre-sampled batches. Consumes no randomness, touches no replay
    /// buffer, and only mutates this agent's own networks and optimizers —
    /// safe to run for all agents concurrently.
    pub fn apply_update(&mut self, prepared: PreparedUpdate) -> Option<UpdateStats> {
        {
            let _span = hero_rl::telemetry::span("opponent_model");
            if let Some(batch) = &prepared.opponent {
                let losses = self.opponent.update_batch(batch);
                for (trace, l) in self.opponent_losses.iter_mut().zip(&losses) {
                    trace.push(*l);
                }
            }
        }
        let _span = hero_rl::telemetry::span("actor_critic");
        prepared
            .high
            .as_ref()
            .map(|batch| self.high.update_batch(batch, &self.opponent))
    }

    /// Number of stored option transitions.
    pub fn buffer_len(&self) -> usize {
        self.high.buffer_len()
    }

    /// Poisons the high-level actor's first parameter gradient with NaN,
    /// so the next optimizer step trips the non-finite watchdog (used by
    /// the fault-injection harness to prove the watchdog path survives a
    /// real training loop).
    pub fn poison_gradients(&mut self) {
        if let Some(p) = self.high.parameters().first() {
            let shape = p.grad().shape().to_vec();
            p.accumulate_grad(&hero_autograd::Tensor::full(shape, f32::NAN));
        }
    }

    /// Captures the agent's full state — high-level learner, opponent
    /// model, and selection/loss bookkeeping — as named sections (relative
    /// names; the caller prefixes them per agent).
    ///
    /// # Panics
    ///
    /// Panics when called mid-option-segment: snapshots are only taken at
    /// episode boundaries, where no option is active.
    pub fn save_state(&self) -> Vec<(String, Vec<u8>)> {
        assert!(
            self.cursor.is_idle(),
            "agent state can only be captured at an episode boundary"
        );
        let mut sections: Vec<(String, Vec<u8>)> = self
            .high
            .save_state()
            .into_iter()
            .map(|(name, bytes)| (format!("high/{name}"), bytes))
            .collect();
        sections.extend(
            self.opponent
                .save_state()
                .into_iter()
                .map(|(name, bytes)| (format!("opp/{name}"), bytes)),
        );
        let mut book = Vec::new();
        book.extend_from_slice(&(self.selections as u64).to_le_bytes());
        self.opponent_losses.encode(&mut book);
        sections.push(("bookkeeping".to_string(), book));
        sections
    }

    /// Restores state captured by [`HeroAgent::save_state`] into an agent
    /// built with the same dimensions and config. Any active option is
    /// discarded (the snapshot was taken at an episode boundary).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] when a section is missing, malformed, or
    /// shaped for a different architecture.
    pub fn load_state(&mut self, sections: &[(String, Vec<u8>)]) -> Result<(), CheckpointError> {
        let strip = |prefix: &str| -> Vec<(String, Vec<u8>)> {
            sections
                .iter()
                .filter_map(|(name, bytes)| {
                    name.strip_prefix(prefix)
                        .map(|rest| (rest.to_string(), bytes.clone()))
                })
                .collect()
        };
        let book = hero_autograd::serialize::require_section(sections, "bookkeeping")?;
        let mut r = snapshot::Reader::new(book);
        let mapped = |e: snapshot::SnapshotError| {
            CheckpointError::Malformed(format!("agent bookkeeping: {e}"))
        };
        let selections = r.u64().map_err(mapped)? as usize;
        let opponent_losses: Vec<Vec<f32>> = Codec::decode(&mut r).map_err(mapped)?;
        r.finish().map_err(mapped)?;
        if opponent_losses.len() != self.opponent_losses.len() {
            return Err(CheckpointError::Malformed(format!(
                "checkpoint tracks {} opponents, agent has {}",
                opponent_losses.len(),
                self.opponent_losses.len()
            )));
        }
        self.high.load_state(&strip("high/"))?;
        self.opponent.load_state(&strip("opp/"))?;
        self.selections = selections;
        self.opponent_losses = opponent_losses;
        self.cursor.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cfg() -> HeroConfig {
        HeroConfig {
            hidden: 16,
            batch_size: 16,
            warmup: 16,
            ..HeroConfig::default()
        }
    }

    fn state(d: f32) -> VehicleState {
        VehicleState {
            s: 0.0,
            d,
            heading: 0.0,
            speed: 0.1,
        }
    }

    #[test]
    fn ensure_option_is_sticky_until_termination() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut agent = HeroAgent::new(3, 1, cfg(), &mut rng);
        let track = Track::double_lane();
        let obs = [0.1, 0.2, 0.3];
        let o1 = agent.ensure_option(&obs, &state(0.2), &track, &[0], &mut rng, false);
        let o2 = agent.ensure_option(&obs, &state(0.2), &track, &[0], &mut rng, false);
        assert_eq!(o1, o2, "option persists until β fires");
        assert!(agent.current_option().is_some());
    }

    #[test]
    fn segment_closes_into_buffer_on_termination() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut agent = HeroAgent::new(3, 1, cfg(), &mut rng);
        let track = Track::double_lane();
        let obs = [0.1, 0.2, 0.3];
        agent.ensure_option(&obs, &state(0.2), &track, &[2], &mut rng, true);
        let mut terminated = false;
        // In-lane options terminate after `in_lane_option_duration` (3) at
        // the latest; lane change needs the budget (9).
        for _ in 0..10 {
            terminated =
                agent.record_step(&obs, &[2], 0.5, &[0.2, 0.2, 0.2], &state(0.2), &track, false);
            if terminated {
                break;
            }
        }
        assert!(terminated);
        assert_eq!(agent.buffer_len(), 1);
        assert!(agent.current_option().is_none(), "slot freed for re-selection");
    }

    #[test]
    fn done_always_closes_segment() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut agent = HeroAgent::new(3, 1, cfg(), &mut rng);
        let track = Track::double_lane();
        agent.ensure_option(&[0.0; 3], &state(0.2), &track, &[0], &mut rng, true);
        let t = agent.record_step(&[0.0; 3], &[0], -20.0, &[0.0; 3], &state(0.2), &track, true);
        assert!(t);
        assert_eq!(agent.buffer_len(), 1);
    }

    #[test]
    fn force_terminate_closes_and_is_idempotent() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut agent = HeroAgent::new(3, 1, cfg(), &mut rng);
        let track = Track::double_lane();
        agent.ensure_option(&[0.0; 3], &state(0.2), &track, &[0], &mut rng, true);
        agent.force_terminate(&[0.0; 3], false);
        assert_eq!(agent.buffer_len(), 1);
        agent.force_terminate(&[0.0; 3], false);
        assert_eq!(agent.buffer_len(), 1, "no active option, no-op");
    }

    #[test]
    fn discounted_accumulation_matches_hand_computation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut agent = HeroAgent::new(3, 1, cfg(), &mut rng);
        let track = Track::double_lane();
        let gamma = cfg().gamma;
        agent.ensure_option(&[0.0; 3], &state(0.2), &track, &[0], &mut rng, true);
        // Close after exactly 2 steps with rewards 1.0 and 2.0 by forcing.
        agent.record_step(&[0.0; 3], &[0], 1.0, &[0.0; 3], &state(0.2), &track, false);
        // If the option already terminated (in-lane duration 3 > 2, so it
        // has not), record one more then force.
        if agent.current_option().is_some() {
            agent.record_step(&[0.0; 3], &[0], 2.0, &[0.0; 3], &state(0.2), &track, false);
        }
        agent.force_terminate(&[0.0; 3], false);
        // Expected accumulated reward: 1 + γ·2 (when two steps ran).
        // Inspect through the learner's Q after training is overkill here;
        // instead assert the buffer holds exactly one closed segment.
        assert_eq!(agent.buffer_len(), 1);
        let _ = gamma;
    }

    #[test]
    fn begin_episode_discards_partial_segment() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut agent = HeroAgent::new(3, 1, cfg(), &mut rng);
        let track = Track::double_lane();
        agent.ensure_option(&[0.0; 3], &state(0.2), &track, &[0], &mut rng, true);
        agent.begin_episode();
        assert!(agent.current_option().is_none());
        assert_eq!(agent.buffer_len(), 0, "partial segment dropped, not stored");
    }
}

//! # hero-core
//!
//! HERO — **H**ierarchical r**E**inforcement learning with **R**einforced
//! **O**pponent modeling — the primary contribution of *"Hierarchical
//! Reinforcement Learning with Opponent Modeling for Distributed
//! Multi-agent Cooperation"* (ICDCS 2022), reproduced in Rust.
//!
//! Each agent's policy is decomposed into:
//!
//! * a **high-level cooperation layer** ([`highlevel::HighLevelLearner`])
//!   selecting discrete options (`keep lane` / `slow down` / `accelerate`
//!   / `lane change`) with a decentralized actor–critic whose actor and
//!   TD target condition on an **opponent model**
//!   ([`opponent::OpponentModel`]) of the other agents' option policies,
//!   and
//! * a **low-level individual-control layer**
//!   ([`skills::SkillLibrary`]) of SAC policies trained with per-option
//!   intrinsic rewards in parallel single-vehicle environments.
//!
//! Options terminate asynchronously per agent ([`options::ActiveOption`],
//! Sec. III-B); completed segments become SMDP transitions with
//! accumulated discounted rewards (`r_{h,t:t+c}`, `γ^c` bootstrap).
//! [`trainer`] drives the paper's two-stage pipeline (Fig. 2) and the
//! greedy evaluation protocol.
//!
//! ## Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//! use hero_core::config::HeroConfig;
//! use hero_core::skills::{SkillLibrary, SkillTrainingConfig};
//! use hero_core::trainer::{train_team, HeroTeam, TrainOptions};
//! use hero_sim::env::EnvConfig;
//! use hero_sim::scenario;
//!
//! let env_cfg = EnvConfig::default();
//! // Stage 1: learn the low-level skills (Algorithm 2).
//! let (skills, _curves) =
//!     SkillLibrary::train(env_cfg, SkillTrainingConfig::default(), 0);
//! // Stage 2: learn cooperation with opponent modeling (Algorithm 1).
//! let mut env = scenario::congestion(env_cfg, 0);
//! let mut team = HeroTeam::new(3, env_cfg.high_dim(), Arc::new(skills),
//!                              HeroConfig::default(), 0);
//! let curves = train_team(&mut team, &mut env, &TrainOptions::default());
//! println!("final reward: {:?}", curves.tail_mean("reward", 100));
//! ```

#![warn(missing_docs)]

pub mod agent;
pub mod checkpoint;
pub mod config;
pub mod highlevel;
pub mod opponent;
pub mod options;
pub mod rollout;
pub mod skills;
pub mod trainer;

pub use agent::{AgentCursor, HeroAgent};
pub use checkpoint::{CheckpointStore, TrainerSnapshot, WorkerStates};
pub use config::{HeroConfig, TerminationMode};
pub use highlevel::HighLevelLearner;
pub use opponent::OpponentModel;
pub use options::ActiveOption;
pub use rollout::{train_team_actor_learner, RolloutOptions};
pub use skills::{SkillLibrary, SkillTrainingConfig};
pub use trainer::{
    evaluate_team, train_team, train_team_checkpointed, CheckpointConfig, EvalStats, HeroTeam,
    TeamCursor, TrainError, TrainOptions, TrainOutcome,
};

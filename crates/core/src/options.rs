//! The option framework (Sec. III-B): an executing option is a three-tuple
//! `(I_o, π_h, β_o)`; this module tracks the *execution state* of the
//! currently selected option and evaluates its termination condition
//! `β_o(s)` under asynchronous termination.

use hero_sim::options::{adjacent_lane, DrivingOption};
use hero_sim::track::Track;
use hero_sim::vehicle::VehicleState;

use crate::config::HeroConfig;

/// The execution state of one agent's currently running option.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ActiveOption {
    /// Which option is executing.
    pub option: DrivingOption,
    /// Steps executed so far.
    pub elapsed: usize,
    /// Lane the option started in.
    pub start_lane: usize,
    /// Target lane (differs from `start_lane` only for lane change).
    pub target_lane: usize,
}

impl ActiveOption {
    /// Starts an option from the current vehicle state.
    pub fn start(option: DrivingOption, state: &VehicleState, track: &Track) -> Self {
        let start_lane = state.lane(track);
        let target_lane = match option {
            DrivingOption::LaneChange => adjacent_lane(start_lane, track),
            _ => start_lane,
        };
        Self {
            option,
            elapsed: 0,
            start_lane,
            target_lane,
        }
    }

    /// Lateral coordinate of the target lane's center.
    pub fn target_d(&self, track: &Track) -> f32 {
        track.lane_center(self.target_lane)
    }

    /// Advances the elapsed-step counter.
    pub fn tick(&mut self) {
        self.elapsed += 1;
    }

    /// Evaluates the termination condition `β_o(s)` (Sec. III-B):
    ///
    /// * in-lane options terminate after a fixed temporal extent,
    /// * lane change terminates when the maneuver completes (reached the
    ///   adjacent lane's center, straightened out) or its budget expires.
    pub fn terminated(&self, state: &VehicleState, track: &Track, cfg: &HeroConfig) -> bool {
        match self.option {
            DrivingOption::KeepLane | DrivingOption::SlowDown | DrivingOption::Accelerate => {
                self.elapsed >= cfg.in_lane_option_duration
            }
            DrivingOption::LaneChange => {
                let reached = (state.d - self.target_d(track)).abs() < 0.05
                    && state.heading.abs() < 0.15;
                reached || self.elapsed >= cfg.lane_change_budget
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(d: f32, heading: f32) -> VehicleState {
        VehicleState {
            s: 0.0,
            d,
            heading,
            speed: 0.1,
        }
    }

    #[test]
    fn in_lane_options_terminate_by_duration() {
        let track = Track::double_lane();
        let cfg = HeroConfig::default();
        let mut o = ActiveOption::start(DrivingOption::Accelerate, &state(0.2, 0.0), &track);
        assert_eq!(o.target_lane, o.start_lane);
        for _ in 0..cfg.in_lane_option_duration - 1 {
            o.tick();
            assert!(!o.terminated(&state(0.2, 0.0), &track, &cfg));
        }
        o.tick();
        assert!(o.terminated(&state(0.2, 0.0), &track, &cfg));
    }

    #[test]
    fn lane_change_terminates_on_completion() {
        let track = Track::double_lane();
        let cfg = HeroConfig::default();
        let mut o = ActiveOption::start(DrivingOption::LaneChange, &state(0.2, 0.0), &track);
        assert_eq!(o.start_lane, 0);
        assert_eq!(o.target_lane, 1);
        o.tick();
        // Mid-maneuver: neither at target nor straight.
        assert!(!o.terminated(&state(0.4, 0.3), &track, &cfg));
        // At the target center and straight: terminated.
        assert!(o.terminated(&state(0.6, 0.05), &track, &cfg));
    }

    #[test]
    fn lane_change_terminates_on_budget() {
        let track = Track::double_lane();
        let cfg = HeroConfig::default();
        let mut o = ActiveOption::start(DrivingOption::LaneChange, &state(0.2, 0.0), &track);
        for _ in 0..cfg.lane_change_budget {
            o.tick();
        }
        assert!(o.terminated(&state(0.3, 0.4), &track, &cfg));
    }

    #[test]
    fn lane_change_from_top_lane_targets_lower() {
        let track = Track::double_lane();
        let o = ActiveOption::start(DrivingOption::LaneChange, &state(0.6, 0.0), &track);
        assert_eq!(o.start_lane, 1);
        assert_eq!(o.target_lane, 0);
        assert!((o.target_d(&track) - 0.2).abs() < 1e-6);
    }
}

//! Soft actor–critic (Haarnoja et al., 2018) for continuous control — the
//! algorithm the paper uses to learn the low-level driving skills
//! (Sec. III-D, Fig. 8).
//!
//! The actor is a tanh-squashed Gaussian; twin critics with Polyak targets
//! stabilize the soft TD target `r + γ(min Q' − α·log π)`. The entropy
//! temperature α can be fixed or auto-tuned toward a target entropy.

use hero_autograd::diagnostics::StepDiagnostics;
use hero_autograd::nn::{Activation, ConvEncoder, Linear, Mlp, Module};
use hero_autograd::optim::{Adam, Optimizer};
use hero_autograd::{loss, serialize, zero_grads, CheckpointError, Graph, NodeId, Parameter, Tensor};
use rand::rngs::StdRng;

use hero_rl::buffer::ReplayBuffer;
use hero_rl::snapshot;
use hero_rl::rng::fill_standard_normal;
use hero_rl::target::{hard_update, soft_update};
use hero_rl::transition::ContinuousTransition;

use crate::common::{column, stack_rows, UpdateStats};

const LOG_2PI: f32 = 1.837_877_1;
const TANH_EPS: f32 = 1e-6;

/// How an observation vector is interpreted by the networks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ObsLayout {
    /// The whole observation feeds a plain MLP.
    #[default]
    Flat,
    /// The observation is `[image…, extras…]`: the image part runs through
    /// a convolutional encoder (the paper's CNN over the camera image,
    /// Sec. V-B) and is concatenated with the trailing extras.
    Image {
        /// Image channels.
        channels: usize,
        /// Image height.
        height: usize,
        /// Image width.
        width: usize,
        /// Number of scalar features after the image (speed, laneID,
        /// option conditioning, …).
        extras: usize,
    },
}

impl ObsLayout {
    /// Total observation width this layout expects.
    pub fn obs_dim(&self, flat_dim: usize) -> usize {
        match *self {
            ObsLayout::Flat => flat_dim,
            ObsLayout::Image {
                channels,
                height,
                width,
                extras,
            } => channels * height * width + extras,
        }
    }
}

/// Per-network feature extractor implementing an [`ObsLayout`].
#[derive(Debug)]
struct FeatureNet {
    layout: ObsLayout,
    conv: Option<ConvEncoder>,
    in_dim: usize,
    out_dim: usize,
}

impl FeatureNet {
    fn new(name: &str, layout: ObsLayout, flat_dim: usize, rng: &mut StdRng) -> Self {
        match layout {
            ObsLayout::Flat => Self {
                layout,
                conv: None,
                in_dim: flat_dim,
                out_dim: flat_dim,
            },
            ObsLayout::Image {
                channels,
                height,
                width,
                extras,
            } => {
                let conv = ConvEncoder::new(name, channels, height, width, rng);
                let out_dim = conv.out_dim() + extras;
                Self {
                    layout,
                    conv: Some(conv),
                    in_dim: channels * height * width + extras,
                    out_dim,
                }
            }
        }
    }

    fn forward(&self, g: &mut Graph, obs: NodeId) -> NodeId {
        match self.layout {
            ObsLayout::Flat => obs,
            ObsLayout::Image {
                channels,
                height,
                width,
                extras,
            } => {
                let conv = self.conv.as_ref().expect("image layout has an encoder");
                let n = g.value(obs).shape()[0];
                let img_len = channels * height * width;
                let img_flat = g.slice_cols(obs, 0..img_len);
                let img = g.reshape(img_flat, vec![n, channels, height, width]);
                let feat = conv.forward(g, img);
                if extras > 0 {
                    let extra = g.slice_cols(obs, img_len..img_len + extras);
                    g.concat_cols(feat, extra)
                } else {
                    feat
                }
            }
        }
    }
}

impl Module for FeatureNet {
    fn parameters(&self) -> Vec<Parameter> {
        self.conv.as_ref().map(Module::parameters).unwrap_or_default()
    }
}

/// SAC hyper-parameters (network sizes and rates follow the paper's
/// Table I).
#[derive(Clone, Copy, Debug)]
pub struct SacConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// Learning rate for actor, critics, and α.
    pub lr: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Polyak rate τ.
    pub tau: f32,
    /// Initial entropy temperature α.
    pub alpha: f32,
    /// When `true`, α is tuned toward `-action_dim` target entropy.
    pub auto_alpha: bool,
    /// Replay capacity.
    pub buffer_capacity: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Minimum stored transitions before updates begin.
    pub warmup: usize,
    /// Clamp range for the actor's log-std head.
    pub log_std_bounds: (f32, f32),
    /// How observations are interpreted (flat MLP or CNN over an image
    /// prefix).
    pub obs_layout: ObsLayout,
}

impl Default for SacConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            lr: 0.01,
            gamma: 0.95,
            tau: 0.01,
            alpha: 0.2,
            auto_alpha: true,
            buffer_capacity: 100_000,
            batch_size: 1024,
            warmup: 256,
            log_std_bounds: (-5.0, 2.0),
            obs_layout: ObsLayout::Flat,
        }
    }
}

/// A tanh-squashed Gaussian policy head (optionally behind a CNN feature
/// extractor).
#[derive(Debug)]
pub struct GaussianActor {
    features: FeatureNet,
    trunk: Mlp,
    mean_head: Linear,
    log_std_head: Linear,
    action_dim: usize,
    log_std_bounds: (f32, f32),
}

impl GaussianActor {
    /// Creates an actor for `obs_dim` → `action_dim` with the given hidden
    /// width.
    pub fn new(
        name: &str,
        obs_dim: usize,
        action_dim: usize,
        hidden: usize,
        log_std_bounds: (f32, f32),
        rng: &mut StdRng,
    ) -> Self {
        Self::with_layout(
            name,
            obs_dim,
            action_dim,
            hidden,
            log_std_bounds,
            ObsLayout::Flat,
            rng,
        )
    }

    /// Creates an actor with an explicit observation layout.
    pub fn with_layout(
        name: &str,
        obs_dim: usize,
        action_dim: usize,
        hidden: usize,
        log_std_bounds: (f32, f32),
        layout: ObsLayout,
        rng: &mut StdRng,
    ) -> Self {
        let features = FeatureNet::new(&format!("{name}.enc"), layout, obs_dim, rng);
        assert_eq!(
            features.in_dim, obs_dim,
            "observation layout does not match obs_dim"
        );
        let feat = features.out_dim;
        Self {
            features,
            trunk: Mlp::new(&format!("{name}.trunk"), &[feat, hidden, hidden], Activation::Relu, rng),
            mean_head: Linear::new(&format!("{name}.mean"), hidden, action_dim, rng),
            log_std_head: Linear::new(&format!("{name}.log_std"), hidden, action_dim, rng),
            action_dim,
            log_std_bounds,
        }
    }

    /// Action dimension.
    pub fn action_dim(&self) -> usize {
        self.action_dim
    }

    /// Records the reparameterized sample `a = tanh(μ + σ·ε)` and its
    /// log-probability (with the tanh change-of-variables correction).
    /// `eps` must be a `[batch, action_dim]` standard-normal input node.
    /// Returns `(action, log_prob)` where `log_prob` is `[batch, 1]`.
    pub fn sample(&self, g: &mut Graph, obs: NodeId, eps: NodeId) -> (NodeId, NodeId) {
        let feat = self.features.forward(g, obs);
        let h = self.trunk.forward(g, feat);
        let h = g.relu(h);
        let mean = self.mean_head.forward(g, h);
        let log_std_raw = self.log_std_head.forward(g, h);
        let (lo, hi) = self.log_std_bounds;
        let log_std = g.clamp(log_std_raw, lo, hi);
        let std = g.exp(log_std);
        let noise = g.mul(std, eps);
        let u = g.add(mean, noise);
        let action = g.tanh(u);

        // log N(u | μ, σ) = -0.5 ε² − log σ − 0.5 ln 2π  (ε is the input
        // noise by construction, so only the −log σ term carries gradient
        // from the density itself; the tanh correction carries the rest).
        let eps_sq = g.mul(eps, eps);
        let gauss = g.scale(eps_sq, -0.5);
        let neg_log_std = g.neg(log_std);
        let base = g.add(gauss, neg_log_std);
        let base = g.add_scalar(base, -0.5 * LOG_2PI);
        let a_sq = g.mul(action, action);
        let neg_a_sq = g.neg(a_sq);
        let one_minus = g.add_scalar(neg_a_sq, 1.0 + TANH_EPS);
        let corr = g.ln(one_minus);
        let neg_corr = g.neg(corr);
        let per_dim = g.add(base, neg_corr);
        let log_prob = g.sum_rows(per_dim);
        (action, log_prob)
    }

    /// The deterministic (mean) action `tanh(μ)` for evaluation.
    pub fn mean_action(&self, obs: &[f32]) -> Vec<f32> {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1, obs.len()], obs.to_vec()));
        let feat = self.features.forward(&mut g, x);
        let h = self.trunk.forward(&mut g, feat);
        let h = g.relu(h);
        let mean = self.mean_head.forward(&mut g, h);
        let a = g.tanh(mean);
        g.value(a).data().to_vec()
    }
}

impl Module for GaussianActor {
    fn parameters(&self) -> Vec<Parameter> {
        let mut p = self.features.parameters();
        p.extend(self.trunk.parameters());
        p.extend(self.mean_head.parameters());
        p.extend(self.log_std_head.parameters());
        p
    }
}

/// A twin-critic Q-network `(obs, action) → value` behind the same
/// observation layout as the actor.
#[derive(Debug)]
struct Critic {
    features: FeatureNet,
    net: Mlp,
}

impl Critic {
    fn new(
        name: &str,
        obs_dim: usize,
        action_dim: usize,
        hidden: usize,
        layout: ObsLayout,
        rng: &mut StdRng,
    ) -> Self {
        let features = FeatureNet::new(&format!("{name}.enc"), layout, obs_dim, rng);
        let net = Mlp::new(
            name,
            &[features.out_dim + action_dim, hidden, hidden, 1],
            Activation::Relu,
            rng,
        );
        Self { features, net }
    }

    fn forward(&self, g: &mut Graph, obs: NodeId, action: NodeId) -> NodeId {
        let feat = self.features.forward(g, obs);
        let qin = g.concat_cols(feat, action);
        self.net.forward(g, qin)
    }
}

impl Module for Critic {
    fn parameters(&self) -> Vec<Parameter> {
        let mut p = self.features.parameters();
        p.extend(self.net.parameters());
        p
    }
}

/// A soft actor–critic agent over squashed actions in `[-1, 1]^d`.
#[derive(Debug)]
pub struct SacAgent {
    actor: GaussianActor,
    q1: Critic,
    q2: Critic,
    q1_target: Critic,
    q2_target: Critic,
    actor_opt: Adam,
    critic_opt: Adam,
    buffer: ReplayBuffer<ContinuousTransition>,
    cfg: SacConfig,
    log_alpha: f32,
    target_entropy: f32,
    obs_dim: usize,
}

impl SacAgent {
    /// Creates an agent for `obs_dim` observations and `action_dim`
    /// squashed continuous actions.
    pub fn new(obs_dim: usize, action_dim: usize, cfg: SacConfig, rng: &mut StdRng) -> Self {
        let actor = GaussianActor::with_layout(
            "sac.actor",
            obs_dim,
            action_dim,
            cfg.hidden,
            cfg.log_std_bounds,
            cfg.obs_layout,
            rng,
        );
        let mk = |name: &str, rng: &mut StdRng| {
            Critic::new(name, obs_dim, action_dim, cfg.hidden, cfg.obs_layout, rng)
        };
        let q1 = mk("sac.q1", rng);
        let q2 = mk("sac.q2", rng);
        let q1_target = mk("sac.q1t", rng);
        let q2_target = mk("sac.q2t", rng);
        hard_update(&q1.parameters(), &q1_target.parameters());
        hard_update(&q2.parameters(), &q2_target.parameters());
        let mut actor_opt = Adam::new(actor.parameters(), cfg.lr);
        actor_opt.set_diagnostics(StepDiagnostics::named("sac.actor"));
        let mut critic_params = q1.parameters();
        critic_params.extend(q2.parameters());
        let mut critic_opt = Adam::new(critic_params, cfg.lr);
        critic_opt.set_diagnostics(StepDiagnostics::named("sac.critic"));
        Self {
            actor,
            q1,
            q2,
            q1_target,
            q2_target,
            actor_opt,
            critic_opt,
            buffer: ReplayBuffer::new(cfg.buffer_capacity),
            cfg,
            log_alpha: cfg.alpha.max(1e-4).ln(),
            target_entropy: -(action_dim as f32),
            obs_dim,
        }
    }

    /// Current entropy temperature α.
    pub fn alpha(&self) -> f32 {
        self.log_alpha.exp()
    }

    /// The policy network (e.g. for checkpointing).
    pub fn actor(&self) -> &GaussianActor {
        &self.actor
    }

    /// Number of stored transitions.
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// Samples a stochastic action (training) or the mean action
    /// (evaluation) in `[-1, 1]^d`.
    pub fn act(&self, obs: &[f32], rng: &mut StdRng, stochastic: bool) -> Vec<f32> {
        assert_eq!(obs.len(), self.obs_dim, "observation width mismatch");
        if !stochastic {
            return self.actor.mean_action(obs);
        }
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1, obs.len()], obs.to_vec()));
        let mut eps_data = vec![0.0f32; self.actor.action_dim()];
        fill_standard_normal(rng, &mut eps_data);
        let eps = g.input(Tensor::from_vec(vec![1, self.actor.action_dim()], eps_data));
        let (a, _) = self.actor.sample(&mut g, x, eps);
        g.value(a).data().to_vec()
    }

    /// Stores a transition.
    pub fn observe(&mut self, t: ContinuousTransition) {
        self.buffer.push(t);
    }

    /// One SAC update (critics, actor, α); `None` before warm-up.
    pub fn update(&mut self, rng: &mut StdRng) -> Option<UpdateStats> {
        let need = self.cfg.warmup.max(self.cfg.batch_size.min(self.buffer.capacity()));
        if self.buffer.len() < need {
            return None;
        }
        let batch = self.buffer.sample(rng, self.cfg.batch_size);
        let n = batch.len();
        let act_dim = self.actor.action_dim();
        let obs: Vec<&[f32]> = batch.iter().map(|t| t.obs.as_slice()).collect();
        let next: Vec<&[f32]> = batch.iter().map(|t| t.next_obs.as_slice()).collect();
        let acts: Vec<&[f32]> = batch.iter().map(|t| t.action.as_slice()).collect();
        let obs_t = stack_rows(&obs);
        let next_t = stack_rows(&next);
        let acts_t = stack_rows(&acts);

        // Soft TD target (values only; no gradients).
        let alpha = self.alpha();
        let (next_q, next_logp) = {
            let mut g = Graph::new();
            let xn = g.input(next_t.clone());
            let mut eps_data = vec![0.0f32; n * act_dim];
            fill_standard_normal(rng, &mut eps_data);
            let eps = g.input(Tensor::from_vec(vec![n, act_dim], eps_data));
            let (a_next, logp_next) = self.actor.sample(&mut g, xn, eps);
            let xn2 = g.input(next_t.clone());
            let q1 = self.q1_target.forward(&mut g, xn2, a_next);
            let q2 = self.q2_target.forward(&mut g, xn2, a_next);
            let qmin = g.minimum(q1, q2);
            (
                g.value(qmin).data().to_vec(),
                g.value(logp_next).data().to_vec(),
            )
        };
        let targets: Vec<f32> = batch
            .iter()
            .enumerate()
            .map(|(i, t)| {
                t.reward
                    + if t.done {
                        0.0
                    } else {
                        self.cfg.gamma * (next_q[i] - alpha * next_logp[i])
                    }
            })
            .collect();

        // Critic update.
        let (critic_loss, q_mean) = {
            let mut g = Graph::new();
            let x = g.input(obs_t.clone());
            let a = g.input(acts_t);
            let q1 = self.q1.forward(&mut g, x, a);
            let q2 = self.q2.forward(&mut g, x, a);
            let y = g.input(column(&targets));
            let l1 = loss::mse(&mut g, q1, y);
            let l2 = loss::mse(&mut g, q2, y);
            let l = g.add(l1, l2);
            let total = g.sum(l);
            let value = g.value(total).item();
            let q_mean = (g.value(q1).mean() + g.value(q2).mean()) * 0.5;
            g.backward(total);
            self.critic_opt.step();
            (value / 2.0, q_mean)
        };

        // Actor update: minimize E[α·logπ − min Q]. Critic gradients from
        // this pass are discarded.
        let (actor_loss, mean_logp) = {
            let mut g = Graph::new();
            let x = g.input(obs_t);
            let mut eps_data = vec![0.0f32; n * act_dim];
            fill_standard_normal(rng, &mut eps_data);
            let eps = g.input(Tensor::from_vec(vec![n, act_dim], eps_data));
            let (a_new, logp) = self.actor.sample(&mut g, x, eps);
            let x2 = g.input(stack_rows(&obs));
            let q1 = self.q1.forward(&mut g, x2, a_new);
            let q2 = self.q2.forward(&mut g, x2, a_new);
            let qmin = g.minimum(q1, q2);
            let weighted = g.scale(logp, alpha);
            let diff = g.sub(weighted, qmin);
            let l = g.mean(diff);
            let value = g.value(l).item();
            let lp_mean = g.value(logp).mean();
            g.backward(l);
            self.actor_opt.step();
            zero_grads(self.critic_opt.parameters());
            (value, lp_mean)
        };

        // Temperature update toward the target entropy.
        if self.cfg.auto_alpha {
            let grad = -(mean_logp + self.target_entropy);
            self.log_alpha -= self.cfg.lr * grad;
            self.log_alpha = self.log_alpha.clamp(-10.0, 2.0);
        }

        soft_update(&self.q1.parameters(), &self.q1_target.parameters(), self.cfg.tau);
        soft_update(&self.q2.parameters(), &self.q2_target.parameters(), self.cfg.tau);

        if hero_rl::telemetry::is_enabled() {
            hero_rl::telemetry::observe("sac/alpha", f64::from(self.alpha()));
            hero_rl::telemetry::observe("sac/q_mean", f64::from(q_mean));
            hero_rl::telemetry::observe("sac/entropy", f64::from(-mean_logp));
        }

        Some(UpdateStats {
            critic_loss,
            actor_loss,
        })
    }

    /// All trainable parameters (actor followed by critics) for
    /// checkpointing.
    pub fn parameters(&self) -> Vec<Parameter> {
        let mut p = self.actor.parameters();
        p.extend(self.q1.parameters());
        p.extend(self.q2.parameters());
        p
    }

    /// Target-network parameters (q1 target followed by q2 target).
    fn target_parameters(&self) -> Vec<Parameter> {
        let mut p = self.q1_target.parameters();
        p.extend(self.q2_target.parameters());
        p
    }

    /// Captures the complete agent state — networks, target networks, both
    /// Adam optimizers, the replay buffer, and the entropy temperature — as
    /// named checkpoint sections. Restoring via [`SacAgent::load_state`]
    /// makes continued training bit-identical to never having stopped.
    pub fn save_state(&self) -> Vec<(String, Vec<u8>)> {
        let mut scalars = Vec::with_capacity(8);
        scalars.extend_from_slice(&self.log_alpha.to_le_bytes());
        scalars.extend_from_slice(&self.target_entropy.to_le_bytes());
        vec![
            ("params".to_string(), serialize::encode_params(&self.parameters())),
            (
                "q_targets".to_string(),
                serialize::encode_params(&self.target_parameters()),
            ),
            (
                "actor_opt".to_string(),
                serialize::encode_optimizer(&self.actor_opt.export_state()),
            ),
            (
                "critic_opt".to_string(),
                serialize::encode_optimizer(&self.critic_opt.export_state()),
            ),
            ("buffer".to_string(), snapshot::encode_replay(&self.buffer)),
            ("scalars".to_string(), scalars),
        ]
    }

    /// Restores state captured by [`SacAgent::save_state`] into an agent
    /// built with the same dimensions and config.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] when a section is missing, malformed, or
    /// shaped for a different architecture. The agent is left unchanged on
    /// a decode error in any section that is validated before application.
    pub fn load_state(&mut self, sections: &[(String, Vec<u8>)]) -> Result<(), CheckpointError> {
        let malformed = |what: String| CheckpointError::Malformed(what);
        // Decode everything fallible first, then apply.
        let actor_state =
            serialize::decode_optimizer(serialize::require_section(sections, "actor_opt")?)?;
        let critic_state =
            serialize::decode_optimizer(serialize::require_section(sections, "critic_opt")?)?;
        let buffer = snapshot::decode_replay::<ContinuousTransition>(serialize::require_section(
            sections, "buffer",
        )?)
        .map_err(|e| malformed(format!("sac buffer: {e}")))?;
        let scalars = serialize::require_section(sections, "scalars")?;
        if scalars.len() != 8 {
            return Err(malformed(format!(
                "sac scalars section has {} bytes, expected 8",
                scalars.len()
            )));
        }
        let log_alpha = f32::from_le_bytes(scalars[0..4].try_into().unwrap());
        let target_entropy = f32::from_le_bytes(scalars[4..8].try_into().unwrap());
        if !log_alpha.is_finite() || !target_entropy.is_finite() {
            return Err(malformed("sac scalars are not finite".to_string()));
        }

        serialize::decode_params(
            serialize::require_section(sections, "params")?,
            &self.parameters(),
        )?;
        serialize::decode_params(
            serialize::require_section(sections, "q_targets")?,
            &self.target_parameters(),
        )?;
        self.actor_opt.import_state(actor_state)?;
        self.critic_opt.import_state(critic_state)?;
        self.buffer = buffer;
        self.log_alpha = log_alpha;
        self.target_entropy = target_entropy;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small_cfg() -> SacConfig {
        SacConfig {
            hidden: 16,
            batch_size: 32,
            warmup: 32,
            lr: 0.01,
            ..SacConfig::default()
        }
    }

    #[test]
    fn actions_are_squashed() {
        let mut rng = StdRng::seed_from_u64(0);
        let agent = SacAgent::new(3, 2, small_cfg(), &mut rng);
        for _ in 0..20 {
            let a = agent.act(&[0.1, -0.2, 0.3], &mut rng, true);
            assert_eq!(a.len(), 2);
            assert!(a.iter().all(|v| (-1.0..=1.0).contains(v)), "{a:?}");
        }
        let det = agent.act(&[0.1, -0.2, 0.3], &mut rng, false);
        let det2 = agent.act(&[0.1, -0.2, 0.3], &mut rng, false);
        assert_eq!(det, det2, "mean action is deterministic");
    }

    #[test]
    fn log_prob_is_finite_and_negative_for_diffuse_policy() {
        let mut rng = StdRng::seed_from_u64(1);
        let agent = SacAgent::new(2, 2, small_cfg(), &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![4, 2], vec![0.1; 8]));
        let eps = g.input(Tensor::from_vec(vec![4, 2], vec![0.3; 8]));
        let (_, logp) = agent.actor.sample(&mut g, x, eps);
        assert!(g.value(logp).all_finite());
    }

    /// Bandit: reward = 1 - a², maximized at a = 0 (after squashing,
    /// actions near 0).
    #[test]
    fn learns_a_continuous_bandit() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut agent = SacAgent::new(1, 1, small_cfg(), &mut rng);
        for _ in 0..300 {
            let a = agent.act(&[1.0], &mut rng, true);
            let r = 1.0 - a[0] * a[0];
            agent.observe(ContinuousTransition {
                obs: vec![1.0],
                action: a,
                reward: r,
                next_obs: vec![1.0],
                done: true,
            });
            agent.update(&mut rng);
        }
        for _ in 0..200 {
            agent.update(&mut rng);
        }
        let a = agent.act(&[1.0], &mut rng, false);
        assert!(
            a[0].abs() < 0.35,
            "policy should concentrate near 0, got {}",
            a[0]
        );
    }

    #[test]
    fn alpha_auto_tunes_downward_when_entropy_high() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut agent = SacAgent::new(1, 1, small_cfg(), &mut rng);
        let initial = agent.alpha();
        for _ in 0..100 {
            let a = agent.act(&[0.5], &mut rng, true);
            agent.observe(ContinuousTransition {
                obs: vec![0.5],
                action: a,
                reward: 0.0,
                next_obs: vec![0.5],
                done: false,
            });
            agent.update(&mut rng);
        }
        assert_ne!(agent.alpha(), initial, "alpha should move when auto-tuned");
        assert!(agent.alpha().is_finite());
    }

    #[test]
    fn no_update_before_warmup() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut agent = SacAgent::new(2, 1, small_cfg(), &mut rng);
        assert!(agent.update(&mut rng).is_none());
    }

    #[test]
    fn vision_layout_agent_acts_and_updates() {
        let layout = ObsLayout::Image {
            channels: 1,
            height: 6,
            width: 6,
            extras: 2,
        };
        let obs_dim = layout.obs_dim(0);
        assert_eq!(obs_dim, 38);
        let cfg = SacConfig {
            obs_layout: layout,
            hidden: 8,
            batch_size: 8,
            warmup: 8,
            ..SacConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let mut agent = SacAgent::new(obs_dim, 2, cfg, &mut rng);
        let obs: Vec<f32> = (0..obs_dim).map(|i| (i % 3) as f32 * 0.3).collect();
        let a = agent.act(&obs, &mut rng, true);
        assert_eq!(a.len(), 2);
        assert!(a.iter().all(|v| (-1.0..=1.0).contains(v)));
        for i in 0..16 {
            agent.observe(ContinuousTransition {
                obs: obs.clone(),
                action: vec![0.1 * (i % 5) as f32, -0.2],
                reward: (i % 3) as f32 * 0.5,
                next_obs: obs.clone(),
                done: i % 4 == 0,
            });
        }
        let stats = agent.update(&mut rng).expect("warmup satisfied");
        assert!(stats.critic_loss.is_finite());
        assert!(stats.actor_loss.is_finite());
        // Conv encoder parameters must be part of the trainable set.
        assert!(agent.parameters().len() > SacAgent::new(obs_dim, 2, SacConfig {
            obs_layout: ObsLayout::Flat,
            hidden: 8,
            ..SacConfig::default()
        }, &mut rng).parameters().len() - 6, "encoder params present");
    }

    #[test]
    fn save_load_state_resumes_bit_identically() {
        let drive = |agent: &mut SacAgent, rng: &mut StdRng, steps: usize| -> Vec<f32> {
            let mut out = Vec::new();
            for i in 0..steps {
                let obs = vec![(i % 7) as f32 * 0.1, -0.3];
                let a = agent.act(&obs, rng, true);
                out.extend_from_slice(&a);
                let r = 0.5 - a[0] * a[0];
                agent.observe(ContinuousTransition {
                    obs,
                    action: a,
                    reward: r,
                    next_obs: vec![((i + 1) % 7) as f32 * 0.1, -0.3],
                    done: i % 5 == 0,
                });
                if let Some(stats) = agent.update(rng) {
                    out.push(stats.critic_loss);
                    out.push(stats.actor_loss);
                }
            }
            out.push(agent.alpha());
            out
        };

        // Uninterrupted reference run: 40 warmup/training steps + 30 more.
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut agent_a = SacAgent::new(2, 1, small_cfg(), &mut rng_a);
        drive(&mut agent_a, &mut rng_a, 40);
        let tail_a = drive(&mut agent_a, &mut rng_a, 30);

        // Interrupted run: same 40 steps, snapshot, restore into a FRESH
        // agent (different init seed), resume the rng stream, continue.
        let mut rng_b = StdRng::seed_from_u64(11);
        let mut agent_b = SacAgent::new(2, 1, small_cfg(), &mut rng_b);
        drive(&mut agent_b, &mut rng_b, 40);
        let sections = agent_b.save_state();
        let rng_state = rng_b.state();
        drop(agent_b);

        let mut scratch = StdRng::seed_from_u64(999);
        let mut restored = SacAgent::new(2, 1, small_cfg(), &mut scratch);
        restored.load_state(&sections).unwrap();
        let mut rng_c = StdRng::from_state(rng_state);
        let tail_b = drive(&mut restored, &mut rng_c, 30);

        assert_eq!(tail_a, tail_b, "resumed run must match uninterrupted run");
    }

    #[test]
    fn load_state_rejects_missing_and_malformed_sections() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut agent = SacAgent::new(2, 1, small_cfg(), &mut rng);
        let mut sections = agent.save_state();
        sections.retain(|(name, _)| name != "critic_opt");
        assert!(matches!(
            agent.load_state(&sections),
            Err(CheckpointError::MissingSection(_))
        ));

        let mut sections = agent.save_state();
        for (name, bytes) in &mut sections {
            if name == "scalars" {
                bytes.truncate(3);
            }
        }
        assert!(agent.load_state(&sections).is_err());
    }

    #[test]
    fn vision_layout_rejects_wrong_obs_dim() {
        let layout = ObsLayout::Image {
            channels: 1,
            height: 6,
            width: 6,
            extras: 2,
        };
        let cfg = SacConfig {
            obs_layout: layout,
            hidden: 8,
            ..SacConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(6);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            SacAgent::new(10, 2, cfg, &mut rng)
        }));
        assert!(result.is_err(), "obs_dim must match the layout");
    }
}

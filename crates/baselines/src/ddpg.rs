//! Deep deterministic policy gradient (Lillicrap et al., 2016) — the
//! continuous-control actor–critic the paper builds on (Sec. II-B) and the
//! single-agent core that MADDPG extends.

use hero_autograd::nn::{Activation, Mlp, Module};
use hero_autograd::optim::{Adam, Optimizer};
use hero_autograd::{loss, zero_grads, Graph, Parameter, Tensor};
use rand::rngs::StdRng;

use hero_rl::buffer::ReplayBuffer;
use hero_rl::explore::OrnsteinUhlenbeck;
use hero_rl::target::{hard_update, soft_update};
use hero_rl::transition::ContinuousTransition;

use crate::common::{column, stack_rows, UpdateStats};

/// DDPG hyper-parameters (defaults follow the paper's Table I).
#[derive(Clone, Copy, Debug)]
pub struct DdpgConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// Learning rate for both networks.
    pub lr: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Polyak rate τ.
    pub tau: f32,
    /// Replay capacity.
    pub buffer_capacity: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Minimum stored transitions before updates begin.
    pub warmup: usize,
    /// Ornstein–Uhlenbeck mean reversion.
    pub ou_theta: f32,
    /// Ornstein–Uhlenbeck volatility.
    pub ou_sigma: f32,
}

impl Default for DdpgConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            lr: 0.01,
            gamma: 0.95,
            tau: 0.01,
            buffer_capacity: 100_000,
            batch_size: 1024,
            warmup: 256,
            ou_theta: 0.15,
            ou_sigma: 0.2,
        }
    }
}

/// A DDPG agent over actions in `[-1, 1]^d`.
#[derive(Debug)]
pub struct DdpgAgent {
    actor: Mlp,
    actor_target: Mlp,
    critic: Mlp,
    critic_target: Mlp,
    actor_opt: Adam,
    critic_opt: Adam,
    noise: OrnsteinUhlenbeck,
    buffer: ReplayBuffer<ContinuousTransition>,
    cfg: DdpgConfig,
    obs_dim: usize,
    action_dim: usize,
}

impl DdpgAgent {
    /// Creates an agent for `obs_dim` observations and `action_dim`
    /// actions.
    pub fn new(obs_dim: usize, action_dim: usize, cfg: DdpgConfig, rng: &mut StdRng) -> Self {
        let actor_dims = [obs_dim, cfg.hidden, cfg.hidden, action_dim];
        let critic_dims = [obs_dim + action_dim, cfg.hidden, cfg.hidden, 1];
        let actor = Mlp::new("ddpg.actor", &actor_dims, Activation::Relu, rng);
        let actor_target = Mlp::new("ddpg.actor_t", &actor_dims, Activation::Relu, rng);
        let critic = Mlp::new("ddpg.critic", &critic_dims, Activation::Relu, rng);
        let critic_target = Mlp::new("ddpg.critic_t", &critic_dims, Activation::Relu, rng);
        hard_update(&actor.parameters(), &actor_target.parameters());
        hard_update(&critic.parameters(), &critic_target.parameters());
        let actor_opt = Adam::new(actor.parameters(), cfg.lr);
        let critic_opt = Adam::new(critic.parameters(), cfg.lr);
        Self {
            actor,
            actor_target,
            critic,
            critic_target,
            actor_opt,
            critic_opt,
            noise: OrnsteinUhlenbeck::new(action_dim, cfg.ou_theta, cfg.ou_sigma),
            buffer: ReplayBuffer::new(cfg.buffer_capacity),
            cfg,
            obs_dim,
            action_dim,
        }
    }

    fn policy(&self, net: &Mlp, obs: &Tensor) -> Tensor {
        let mut g = Graph::new();
        let x = g.input(obs.clone());
        let raw = net.forward(&mut g, x);
        let a = g.tanh(raw);
        g.value(a).clone()
    }

    /// Deterministic action with optional OU exploration noise.
    pub fn act(&mut self, obs: &[f32], rng: &mut StdRng, explore: bool) -> Vec<f32> {
        assert_eq!(obs.len(), self.obs_dim, "observation width mismatch");
        let mut a = self
            .policy(
                &self.actor,
                &Tensor::from_vec(vec![1, obs.len()], obs.to_vec()),
            )
            .into_data();
        if explore {
            for (ai, ni) in a.iter_mut().zip(self.noise.sample(rng)) {
                *ai = (*ai + ni).clamp(-1.0, 1.0);
            }
        }
        a
    }

    /// Resets the exploration-noise process (call between episodes).
    pub fn reset_noise(&mut self) {
        self.noise.reset();
    }

    /// Stores a transition.
    pub fn observe(&mut self, t: ContinuousTransition) {
        self.buffer.push(t);
    }

    /// One DDPG update; `None` before warm-up.
    pub fn update(&mut self, rng: &mut StdRng) -> Option<UpdateStats> {
        let need = self.cfg.warmup.max(self.cfg.batch_size.min(self.buffer.capacity()));
        if self.buffer.len() < need {
            return None;
        }
        let batch = self.buffer.sample(rng, self.cfg.batch_size);
        let obs: Vec<&[f32]> = batch.iter().map(|t| t.obs.as_slice()).collect();
        let next: Vec<&[f32]> = batch.iter().map(|t| t.next_obs.as_slice()).collect();
        let acts: Vec<&[f32]> = batch.iter().map(|t| t.action.as_slice()).collect();
        let obs_t = stack_rows(&obs);
        let next_t = stack_rows(&next);

        // TD target via target actor + target critic (values only).
        let next_a = self.policy(&self.actor_target, &next_t);
        let next_q = {
            let mut g = Graph::new();
            let xn = g.input(next_t);
            let an = g.input(next_a);
            let qin = g.concat_cols(xn, an);
            let q = self.critic_target.forward(&mut g, qin);
            g.value(q).data().to_vec()
        };
        let targets: Vec<f32> = batch
            .iter()
            .enumerate()
            .map(|(i, t)| t.reward + if t.done { 0.0 } else { self.cfg.gamma * next_q[i] })
            .collect();

        let critic_loss = {
            let mut g = Graph::new();
            let x = g.input(obs_t.clone());
            let a = g.input(stack_rows(&acts));
            let qin = g.concat_cols(x, a);
            let q = self.critic.forward(&mut g, qin);
            let y = g.input(column(&targets));
            let l = loss::mse(&mut g, q, y);
            let value = g.value(l).item();
            g.backward(l);
            self.critic_opt.step();
            value
        };

        let actor_loss = {
            let mut g = Graph::new();
            let x = g.input(obs_t.clone());
            let raw = self.actor.forward(&mut g, x);
            let a = g.tanh(raw);
            let x2 = g.input(obs_t);
            let qin = g.concat_cols(x2, a);
            let q = self.critic.forward(&mut g, qin);
            let neg_q = g.neg(q);
            let l = g.mean(neg_q);
            let value = g.value(l).item();
            g.backward(l);
            self.actor_opt.step();
            zero_grads(self.critic_opt.parameters());
            value
        };

        soft_update(&self.actor.parameters(), &self.actor_target.parameters(), self.cfg.tau);
        soft_update(&self.critic.parameters(), &self.critic_target.parameters(), self.cfg.tau);
        Some(UpdateStats {
            critic_loss,
            actor_loss,
        })
    }

    /// Trainable parameters (actor then critic) for checkpointing.
    pub fn parameters(&self) -> Vec<Parameter> {
        let mut p = self.actor.parameters();
        p.extend(self.critic.parameters());
        p
    }

    /// Action dimension.
    pub fn action_dim(&self) -> usize {
        self.action_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small_cfg() -> DdpgConfig {
        DdpgConfig {
            hidden: 16,
            batch_size: 32,
            warmup: 32,
            ..DdpgConfig::default()
        }
    }

    #[test]
    fn actions_bounded() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut agent = DdpgAgent::new(2, 2, small_cfg(), &mut rng);
        for _ in 0..10 {
            let a = agent.act(&[0.5, -0.5], &mut rng, true);
            assert!(a.iter().all(|v| (-1.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn learns_to_output_positive_action() {
        // Bandit: reward = a (maximized at a = 1).
        let mut rng = StdRng::seed_from_u64(1);
        let mut agent = DdpgAgent::new(1, 1, small_cfg(), &mut rng);
        for _ in 0..200 {
            let a = agent.act(&[1.0], &mut rng, true);
            agent.observe(ContinuousTransition {
                obs: vec![1.0],
                action: a.clone(),
                reward: a[0],
                next_obs: vec![1.0],
                done: true,
            });
            agent.update(&mut rng);
        }
        let a = agent.act(&[1.0], &mut rng, false);
        assert!(a[0] > 0.5, "actor should push toward +1, got {}", a[0]);
    }

    #[test]
    fn warmup_respected_and_noise_resets() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut agent = DdpgAgent::new(1, 1, small_cfg(), &mut rng);
        assert!(agent.update(&mut rng).is_none());
        agent.act(&[0.0], &mut rng, true);
        agent.reset_noise();
    }
}

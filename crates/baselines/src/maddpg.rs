//! MADDPG (Lowe et al., 2017) — centralized training with decentralized
//! execution: each agent owns a local actor and a centralized critic over
//! the joint observation and joint action.
//!
//! The lane-change task's high-level action space is discrete, so the
//! actors output categorical logits and the policy gradient flows through
//! a Gumbel-softmax relaxation, exactly as in the original paper's
//! discrete experiments.

use hero_autograd::nn::{Activation, Mlp, Module};
use hero_autograd::optim::{Adam, Optimizer};
use hero_autograd::{loss, zero_grads, Graph, Parameter, Tensor};
use rand::rngs::StdRng;

use hero_rl::buffer::ReplayBuffer;
use hero_rl::explore::greedy;
use hero_rl::rng::{gumbel, sample_from_logits};
use hero_rl::target::{hard_update, soft_update};
use hero_rl::transition::JointTransition;

use crate::common::{column, stack_owned, MultiAgentAlgorithm, UpdateStats};

/// MADDPG hyper-parameters (defaults follow the paper's Table I).
#[derive(Clone, Copy, Debug)]
pub struct MaddpgConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// Learning rate for actors and critics.
    pub lr: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Polyak rate τ.
    pub tau: f32,
    /// Replay capacity.
    pub buffer_capacity: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Minimum stored transitions before updates begin.
    pub warmup: usize,
    /// Gumbel-softmax temperature for the actor gradient.
    pub gumbel_tau: f32,
}

impl Default for MaddpgConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            lr: 0.01,
            gamma: 0.95,
            tau: 0.01,
            buffer_capacity: 100_000,
            batch_size: 1024,
            warmup: 256,
            gumbel_tau: 1.0,
        }
    }
}

struct MaddpgAgent {
    actor: Mlp,
    actor_target: Mlp,
    critic: Mlp,
    critic_target: Mlp,
    actor_opt: Adam,
    critic_opt: Adam,
}

/// The multi-agent MADDPG learner.
pub struct Maddpg {
    agents: Vec<MaddpgAgent>,
    buffer: ReplayBuffer<JointTransition<usize>>,
    cfg: MaddpgConfig,
    obs_dim: usize,
    n_actions: usize,
}

impl Maddpg {
    /// Creates a learner for `n_agents` agents with `obs_dim` local
    /// observations and `n_actions` discrete actions each.
    pub fn new(
        n_agents: usize,
        obs_dim: usize,
        n_actions: usize,
        cfg: MaddpgConfig,
        rng: &mut StdRng,
    ) -> Self {
        let joint_in = n_agents * obs_dim + n_agents * n_actions;
        let agents = (0..n_agents)
            .map(|i| {
                let actor_dims = [obs_dim, cfg.hidden, cfg.hidden, n_actions];
                let critic_dims = [joint_in, cfg.hidden, cfg.hidden, 1];
                let actor = Mlp::new(&format!("maddpg.a{i}.actor"), &actor_dims, Activation::Relu, rng);
                let actor_target =
                    Mlp::new(&format!("maddpg.a{i}.actor_t"), &actor_dims, Activation::Relu, rng);
                let critic =
                    Mlp::new(&format!("maddpg.a{i}.critic"), &critic_dims, Activation::Relu, rng);
                let critic_target =
                    Mlp::new(&format!("maddpg.a{i}.critic_t"), &critic_dims, Activation::Relu, rng);
                hard_update(&actor.parameters(), &actor_target.parameters());
                hard_update(&critic.parameters(), &critic_target.parameters());
                let actor_opt = Adam::new(actor.parameters(), cfg.lr);
                let critic_opt = Adam::new(critic.parameters(), cfg.lr);
                MaddpgAgent {
                    actor,
                    actor_target,
                    critic,
                    critic_target,
                    actor_opt,
                    critic_opt,
                }
            })
            .collect();
        Self {
            agents,
            buffer: ReplayBuffer::new(cfg.buffer_capacity),
            cfg,
            obs_dim,
            n_actions,
        }
    }

    /// Number of stored joint transitions.
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// Trainable parameters of every agent (for checkpointing).
    pub fn parameters(&self) -> Vec<Parameter> {
        let mut p = Vec::new();
        for a in &self.agents {
            p.extend(a.actor.parameters());
            p.extend(a.critic.parameters());
        }
        p
    }

    fn joint_obs(&self, per_agent: &[Vec<Vec<f32>>]) -> Tensor {
        // per_agent[j] is a batch of observations of agent j.
        let n = per_agent[0].len();
        let width = self.agents.len() * self.obs_dim;
        let mut data = Vec::with_capacity(n * width);
        for row in 0..n {
            for agent_obs in per_agent {
                data.extend_from_slice(&agent_obs[row]);
            }
        }
        Tensor::from_vec(vec![n, width], data)
    }

    fn joint_actions_one_hot(&self, actions: &[Vec<usize>]) -> Tensor {
        // actions[row][agent] -> concatenated one-hots.
        let n = actions.len();
        let width = self.agents.len() * self.n_actions;
        let mut data = vec![0.0f32; n * width];
        for (row, acts) in actions.iter().enumerate() {
            for (j, &a) in acts.iter().enumerate() {
                data[row * width + j * self.n_actions + a] = 1.0;
            }
        }
        Tensor::from_vec(vec![n, width], data)
    }

    fn actor_logits(&self, agent: usize, net: TargetOrOnline, obs: &Tensor) -> Tensor {
        let net = match net {
            TargetOrOnline::Online => &self.agents[agent].actor,
            TargetOrOnline::Target => &self.agents[agent].actor_target,
        };
        net.infer(obs)
    }
}

#[derive(Clone, Copy)]
enum TargetOrOnline {
    Online,
    Target,
}

impl MultiAgentAlgorithm for Maddpg {
    fn num_agents(&self) -> usize {
        self.agents.len()
    }

    fn name(&self) -> &'static str {
        "MADDPG"
    }

    fn act(&mut self, obs: &[Vec<f32>], rng: &mut StdRng, explore: bool) -> Vec<usize> {
        obs.iter()
            .enumerate()
            .map(|(i, o)| {
                let logits = self
                    .actor_logits(
                        i,
                        TargetOrOnline::Online,
                        &Tensor::from_vec(vec![1, o.len()], o.clone()),
                    )
                    .into_data();
                if explore {
                    sample_from_logits(rng, &logits)
                } else {
                    greedy(&logits)
                }
            })
            .collect()
    }

    fn observe(&mut self, transition: JointTransition<usize>) {
        self.buffer.push(transition);
    }

    fn update(&mut self, rng: &mut StdRng) -> Option<UpdateStats> {
        let need = self.cfg.warmup.max(self.cfg.batch_size.min(self.buffer.capacity()));
        if self.buffer.len() < need {
            return None;
        }
        let batch: Vec<JointTransition<usize>> = self
            .buffer
            .sample(rng, self.cfg.batch_size)
            .into_iter()
            .cloned()
            .collect();
        let n = batch.len();
        let n_agents = self.agents.len();

        // Batched per-agent observation matrices.
        let per_agent_obs: Vec<Vec<Vec<f32>>> = (0..n_agents)
            .map(|j| batch.iter().map(|t| t.obs[j].clone()).collect())
            .collect();
        let per_agent_next: Vec<Vec<Vec<f32>>> = (0..n_agents)
            .map(|j| batch.iter().map(|t| t.next_obs[j].clone()).collect())
            .collect();
        let joint_obs = self.joint_obs(&per_agent_obs);
        let joint_next = self.joint_obs(&per_agent_next);
        let actions: Vec<Vec<usize>> = batch.iter().map(|t| t.actions.clone()).collect();
        let joint_acts = self.joint_actions_one_hot(&actions);

        // Joint next actions from the target actors (greedy one-hot).
        let next_actions: Vec<Vec<usize>> = {
            let mut per_row: Vec<Vec<usize>> = vec![Vec::with_capacity(n_agents); n];
            for j in 0..n_agents {
                let obs_t = stack_owned(&per_agent_next[j]);
                let logits = self.actor_logits(j, TargetOrOnline::Target, &obs_t);
                for (row, slots) in per_row.iter_mut().enumerate() {
                    slots.push(greedy(logits.row(row)));
                }
            }
            per_row
        };
        let joint_next_acts = self.joint_actions_one_hot(&next_actions);

        let mut critic_total = 0.0;
        let mut actor_total = 0.0;
        for i in 0..n_agents {
            // Critic update.
            let next_q = {
                let mut g = Graph::new();
                let xo = g.input(joint_next.clone());
                let xa = g.input(joint_next_acts.clone());
                let qin = g.concat_cols(xo, xa);
                let q = self.agents[i].critic_target.forward(&mut g, qin);
                g.value(q).data().to_vec()
            };
            let targets: Vec<f32> = batch
                .iter()
                .enumerate()
                .map(|(row, t)| {
                    t.rewards[i] + if t.done { 0.0 } else { self.cfg.gamma * next_q[row] }
                })
                .collect();
            {
                let mut g = Graph::new();
                let xo = g.input(joint_obs.clone());
                let xa = g.input(joint_acts.clone());
                let qin = g.concat_cols(xo, xa);
                let q = self.agents[i].critic.forward(&mut g, qin);
                let y = g.input(column(&targets));
                let l = loss::mse(&mut g, q, y);
                critic_total += g.value(l).item();
                g.backward(l);
                self.agents[i].critic_opt.step();
            }

            // Actor update through the Gumbel-softmax relaxation.
            {
                let mut g = Graph::new();
                let own_obs = g.input(stack_owned(&per_agent_obs[i]));
                let logits = self.agents[i].actor.forward(&mut g, own_obs);
                let mut noise = vec![0.0f32; n * self.n_actions];
                for v in noise.iter_mut() {
                    *v = gumbel(rng);
                }
                let gnoise = g.input(Tensor::from_vec(vec![n, self.n_actions], noise));
                let perturbed = g.add(logits, gnoise);
                let scaled = g.scale(perturbed, 1.0 / self.cfg.gumbel_tau);
                let relaxed = g.softmax(scaled);

                // Joint action input with agent i's slot replaced by the
                // relaxed sample.
                let mut parts = Vec::with_capacity(n_agents);
                for j in 0..n_agents {
                    if j == i {
                        parts.push(relaxed);
                    } else {
                        let mut data = vec![0.0f32; n * self.n_actions];
                        for (row, acts) in actions.iter().enumerate() {
                            data[row * self.n_actions + acts[j]] = 1.0;
                        }
                        parts.push(g.input(Tensor::from_vec(vec![n, self.n_actions], data)));
                    }
                }
                let acts_node = g.concat_cols_many(&parts);
                let xo = g.input(joint_obs.clone());
                let qin = g.concat_cols(xo, acts_node);
                let q = self.agents[i].critic.forward(&mut g, qin);
                let neg = g.neg(q);
                let l = g.mean(neg);
                actor_total += g.value(l).item();
                g.backward(l);
                self.agents[i].actor_opt.step();
                zero_grads(self.agents[i].critic_opt.parameters());
            }

            soft_update(
                &self.agents[i].actor.parameters(),
                &self.agents[i].actor_target.parameters(),
                self.cfg.tau,
            );
            soft_update(
                &self.agents[i].critic.parameters(),
                &self.agents[i].critic_target.parameters(),
                self.cfg.tau,
            );
        }
        Some(UpdateStats {
            critic_loss: critic_total / n_agents as f32,
            actor_loss: actor_total / n_agents as f32,
        })
    }
}

impl std::fmt::Debug for Maddpg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Maddpg(agents={}, obs_dim={}, n_actions={})",
            self.agents.len(),
            self.obs_dim,
            self.n_actions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small_cfg() -> MaddpgConfig {
        MaddpgConfig {
            hidden: 16,
            batch_size: 32,
            warmup: 32,
            ..MaddpgConfig::default()
        }
    }

    fn coordination_transition(a0: usize, a1: usize) -> JointTransition<usize> {
        // Both agents must pick action 1 to earn the team reward.
        let r = if a0 == 1 && a1 == 1 { 1.0 } else { 0.0 };
        JointTransition {
            obs: vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            actions: vec![a0, a1],
            rewards: vec![r, r],
            next_obs: vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            done: true,
        }
    }

    #[test]
    fn act_returns_valid_actions() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut algo = Maddpg::new(2, 2, 3, small_cfg(), &mut rng);
        let acts = algo.act(&[vec![0.1, 0.2], vec![0.3, 0.4]], &mut rng, true);
        assert_eq!(acts.len(), 2);
        assert!(acts.iter().all(|&a| a < 3));
        assert_eq!(algo.name(), "MADDPG");
    }

    #[test]
    fn no_update_before_warmup() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut algo = Maddpg::new(2, 2, 2, small_cfg(), &mut rng);
        assert!(algo.update(&mut rng).is_none());
    }

    #[test]
    fn learns_a_coordination_bandit() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut algo = Maddpg::new(2, 2, 2, small_cfg(), &mut rng);
        for _ in 0..400 {
            let obs = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
            let acts = algo.act(&obs, &mut rng, true);
            algo.observe(coordination_transition(acts[0], acts[1]));
            algo.update(&mut rng);
        }
        let greedy_acts = algo.act(&[vec![1.0, 0.0], vec![0.0, 1.0]], &mut rng, false);
        assert_eq!(
            greedy_acts,
            vec![1, 1],
            "both agents must learn the coordinated action"
        );
    }

    #[test]
    fn update_reports_losses() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut algo = Maddpg::new(2, 2, 2, small_cfg(), &mut rng);
        for _ in 0..40 {
            algo.observe(coordination_transition(0, 1));
        }
        let stats = algo.update(&mut rng).unwrap();
        assert!(stats.critic_loss.is_finite());
        assert!(stats.actor_loss.is_finite());
    }
}

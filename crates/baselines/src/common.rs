//! Shared interfaces and batch helpers for all algorithms.

use hero_autograd::Tensor;
use rand::rngs::StdRng;

use hero_rl::transition::JointTransition;

/// Losses reported by one gradient update.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct UpdateStats {
    /// Critic (value) loss.
    pub critic_loss: f32,
    /// Actor (policy) loss, for actor–critic methods.
    pub actor_loss: f32,
}

/// Common interface of the multi-agent algorithms compared in the paper's
/// evaluation (Sec. V-A). All of them act in the discrete option space
/// `A_h = [keep lane, slow down, accelerate, lane change]`.
pub trait MultiAgentAlgorithm {
    /// Number of learning agents.
    fn num_agents(&self) -> usize;

    /// Short display name (`"DQN"`, `"COMA"`, …).
    fn name(&self) -> &'static str;

    /// Selects one discrete action per agent. With `explore` the
    /// algorithm's exploration strategy applies; without it the policy is
    /// greedy/deterministic.
    fn act(&mut self, obs: &[Vec<f32>], rng: &mut StdRng, explore: bool) -> Vec<usize>;

    /// Stores a joint transition for learning.
    fn observe(&mut self, transition: JointTransition<usize>);

    /// Runs one gradient update if enough experience is available.
    fn update(&mut self, rng: &mut StdRng) -> Option<UpdateStats>;
}

/// Stacks row slices into a `[rows.len(), d]` tensor.
///
/// # Panics
///
/// Panics when `rows` is empty or rows have unequal widths.
pub fn stack_rows(rows: &[&[f32]]) -> Tensor {
    assert!(!rows.is_empty(), "cannot stack zero rows");
    let d = rows[0].len();
    let mut data = Vec::with_capacity(rows.len() * d);
    for r in rows {
        assert_eq!(r.len(), d, "row width mismatch");
        data.extend_from_slice(r);
    }
    Tensor::from_vec(vec![rows.len(), d], data)
}

/// Stacks owned rows into a `[rows.len(), d]` tensor.
///
/// # Panics
///
/// Panics when `rows` is empty or rows have unequal widths.
pub fn stack_owned(rows: &[Vec<f32>]) -> Tensor {
    let refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
    stack_rows(&refs)
}

/// A `[n, 1]` column tensor.
pub fn column(values: &[f32]) -> Tensor {
    Tensor::from_vec(vec![values.len(), 1], values.to_vec())
}

/// Per-sample `γ^k·(1−done)` discount column for TD targets with variable
/// horizon `k` (1 for one-step methods).
pub fn discount_column(gamma: f32, durations: &[usize], dones: &[bool]) -> Tensor {
    let data: Vec<f32> = durations
        .iter()
        .zip(dones)
        .map(|(&k, &d)| if d { 0.0 } else { gamma.powi(k as i32) })
        .collect();
    Tensor::from_vec(vec![data.len(), 1], data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_rows_shapes() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let t = stack_rows(&[&a, &b]);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn stack_rows_rejects_ragged() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32];
        stack_rows(&[&a, &b]);
    }

    #[test]
    fn discount_column_handles_done_and_duration() {
        let t = discount_column(0.9, &[1, 2, 3], &[false, true, false]);
        assert!((t.data()[0] - 0.9).abs() < 1e-6);
        assert_eq!(t.data()[1], 0.0);
        assert!((t.data()[2] - 0.729).abs() < 1e-6);
    }

    #[test]
    fn column_shape() {
        assert_eq!(column(&[1.0, 2.0, 3.0]).shape(), &[3, 1]);
    }
}

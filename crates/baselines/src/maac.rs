//! MAAC — multi-actor-attention-critic (Iqbal & Sha, 2019). Decentralized
//! actors with parameter sharing; each agent's critic attends over the
//! other agents' encoded observation–action pairs through multi-head
//! dot-product attention, and learning follows the soft (maximum-entropy)
//! actor–critic recipe with a counterfactual baseline.

use hero_autograd::nn::{Activation, Linear, Mlp, Module};
use hero_autograd::optim::{Adam, Optimizer};
use hero_autograd::{zero_grads, Graph, NodeId, Parameter, Tensor};
use rand::rngs::StdRng;

use hero_rl::buffer::ReplayBuffer;
use hero_rl::explore::greedy;
use hero_rl::rng::{log_softmax, sample_from_logits, softmax};
use hero_rl::target::{hard_update, soft_update};
use hero_rl::transition::JointTransition;

use crate::common::{column, MultiAgentAlgorithm, UpdateStats};

/// MAAC hyper-parameters (defaults follow the paper's Table I; attention
/// uses 2 heads over the 32-wide embeddings).
#[derive(Clone, Copy, Debug)]
pub struct MaacConfig {
    /// Embedding / hidden width (must be divisible by `heads`).
    pub hidden: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Learning rate for actors and critic.
    pub lr: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Polyak rate τ.
    pub tau: f32,
    /// Entropy temperature α of the soft update.
    pub alpha: f32,
    /// Replay capacity.
    pub buffer_capacity: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Minimum stored transitions before updates begin.
    pub warmup: usize,
}

impl Default for MaacConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            heads: 2,
            lr: 0.01,
            gamma: 0.95,
            tau: 0.01,
            alpha: 0.2,
            buffer_capacity: 100_000,
            batch_size: 1024,
            warmup: 256,
        }
    }
}

/// The attention critic: shared encoders, multi-head attention over the
/// other agents, and a shared Q head producing per-action values.
#[derive(Debug)]
struct AttentionCritic {
    state_encoder: Linear,
    pair_encoder: Linear,
    queries: Vec<Linear>,
    keys: Vec<Linear>,
    values: Vec<Linear>,
    q_head: Mlp,
    head_dim: usize,
}

impl AttentionCritic {
    fn new(
        name: &str,
        n_agents: usize,
        obs_dim: usize,
        n_actions: usize,
        cfg: &MaacConfig,
        rng: &mut StdRng,
    ) -> Self {
        assert!(
            cfg.hidden % cfg.heads == 0,
            "hidden width must be divisible by the head count"
        );
        let d = cfg.hidden;
        let head_dim = d / cfg.heads;
        let state_encoder = Linear::new(&format!("{name}.enc_s"), obs_dim + n_agents, d, rng);
        let pair_encoder = Linear::new(&format!("{name}.enc_e"), obs_dim + n_actions, d, rng);
        let mk = |prefix: &str, rng: &mut StdRng| {
            (0..cfg.heads)
                .map(|h| Linear::new(&format!("{name}.{prefix}{h}"), d, head_dim, rng))
                .collect::<Vec<_>>()
        };
        let queries = mk("wq", rng);
        let keys = mk("wk", rng);
        let values = mk("wv", rng);
        let q_head = Mlp::new(
            &format!("{name}.q_head"),
            &[2 * d, d, n_actions],
            Activation::Relu,
            rng,
        );
        Self {
            state_encoder,
            pair_encoder,
            queries,
            keys,
            values,
            q_head,
            head_dim,
        }
    }

    /// Q-values `[batch, n_actions]` of agent `i` given every agent's
    /// observation node and every *other* agent's action one-hot node.
    ///
    /// `obs[j]` must be `[batch, obs_dim + n_agents]` for the ego slot
    /// (agent one-hot appended by the caller) — only `obs[i]` is used for
    /// the state path; attention consumes `pair[j] = [obs_j ‖ onehot(a_j)]`
    /// for `j ≠ i`.
    fn forward(
        &self,
        g: &mut Graph,
        i: usize,
        ego_state: NodeId,
        pairs: &[Option<NodeId>],
    ) -> NodeId {
        let s = self.state_encoder.forward(g, ego_state);
        let s = g.relu(s);
        let embeddings: Vec<(usize, NodeId)> = pairs
            .iter()
            .enumerate()
            .filter(|(j, p)| *j != i && p.is_some())
            .map(|(j, p)| {
                let e = self.pair_encoder.forward(g, p.unwrap());
                (j, g.relu(e))
            })
            .collect();
        assert!(
            !embeddings.is_empty(),
            "attention needs at least one other agent"
        );
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut head_outputs = Vec::with_capacity(self.queries.len());
        for h in 0..self.queries.len() {
            let q = self.queries[h].forward(g, s);
            let mut scores = Vec::with_capacity(embeddings.len());
            let mut values = Vec::with_capacity(embeddings.len());
            for (_, e) in &embeddings {
                let k = self.keys[h].forward(g, *e);
                let qk = g.mul(q, k);
                let score = g.sum_rows(qk);
                scores.push(g.scale(score, scale));
                let v = self.values[h].forward(g, *e);
                values.push(g.relu(v));
            }
            let score_mat = g.concat_cols_many(&scores);
            let attn = g.softmax(score_mat);
            let mut x: Option<NodeId> = None;
            for (idx, v) in values.iter().enumerate() {
                let w = g.slice_cols(attn, idx..idx + 1);
                let contrib = g.row_scale(*v, w);
                x = Some(match x {
                    Some(acc) => g.add(acc, contrib),
                    None => contrib,
                });
            }
            head_outputs.push(x.expect("at least one attention target"));
        }
        let x = g.concat_cols_many(&head_outputs);
        let joined = g.concat_cols(s, x);
        self.q_head.forward(g, joined)
    }
}

impl Module for AttentionCritic {
    fn parameters(&self) -> Vec<Parameter> {
        let mut p = self.state_encoder.parameters();
        p.extend(self.pair_encoder.parameters());
        for group in [&self.queries, &self.keys, &self.values] {
            for l in group {
                p.extend(l.parameters());
            }
        }
        p.extend(self.q_head.parameters());
        p
    }
}

/// The MAAC learner.
pub struct Maac {
    actor: Mlp,
    critic: AttentionCritic,
    critic_target: AttentionCritic,
    actor_opt: Adam,
    critic_opt: Adam,
    buffer: ReplayBuffer<JointTransition<usize>>,
    cfg: MaacConfig,
    n_agents: usize,
    obs_dim: usize,
    n_actions: usize,
}

impl Maac {
    /// Creates a learner for `n_agents` agents with `obs_dim` local
    /// observations and `n_actions` discrete actions each.
    pub fn new(
        n_agents: usize,
        obs_dim: usize,
        n_actions: usize,
        cfg: MaacConfig,
        rng: &mut StdRng,
    ) -> Self {
        assert!(n_agents >= 2, "MAAC's attention needs at least two agents");
        let actor = Mlp::new(
            "maac.actor",
            &[obs_dim + n_agents, cfg.hidden, cfg.hidden, n_actions],
            Activation::Relu,
            rng,
        );
        let critic = AttentionCritic::new("maac.critic", n_agents, obs_dim, n_actions, &cfg, rng);
        let critic_target =
            AttentionCritic::new("maac.critic_t", n_agents, obs_dim, n_actions, &cfg, rng);
        hard_update(&critic.parameters(), &critic_target.parameters());
        let actor_opt = Adam::new(actor.parameters(), cfg.lr);
        let critic_opt = Adam::new(critic.parameters(), cfg.lr);
        Self {
            actor,
            critic,
            critic_target,
            actor_opt,
            critic_opt,
            buffer: ReplayBuffer::new(cfg.buffer_capacity),
            cfg,
            n_agents,
            obs_dim,
            n_actions,
        }
    }

    /// Number of stored joint transitions.
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// Trainable parameters (actor then critic) for checkpointing.
    pub fn parameters(&self) -> Vec<Parameter> {
        let mut p = self.actor.parameters();
        p.extend(self.critic.parameters());
        p
    }

    fn actor_input(&self, agent: usize, obs: &[f32]) -> Vec<f32> {
        let mut v = obs.to_vec();
        for j in 0..self.n_agents {
            v.push(if j == agent { 1.0 } else { 0.0 });
        }
        v
    }

    /// Policy logits of `agent` for a local observation.
    pub fn logits(&self, agent: usize, obs: &[f32]) -> Vec<f32> {
        let input = self.actor_input(agent, obs);
        self.actor
            .infer(&Tensor::from_vec(vec![1, input.len()], input))
            .into_data()
    }

    fn stack(&self, rows: Vec<Vec<f32>>) -> Tensor {
        let n = rows.len();
        let d = rows[0].len();
        let mut data = Vec::with_capacity(n * d);
        for r in rows {
            data.extend(r);
        }
        Tensor::from_vec(vec![n, d], data)
    }

    fn pair_vec(&self, obs: &[f32], action: usize) -> Vec<f32> {
        let mut v = obs.to_vec();
        for k in 0..self.n_actions {
            v.push(if k == action { 1.0 } else { 0.0 });
        }
        v
    }

    /// Q-values `[batch, n_actions]` for agent `i` from `critic`, using the
    /// given joint observations and joint actions.
    fn critic_values(
        &self,
        target: bool,
        i: usize,
        obs: &[Vec<Vec<f32>>],
        actions: &[Vec<usize>],
    ) -> Tensor {
        let mut g = Graph::new();
        let ego =
            g.input(self.stack(obs[i].iter().map(|o| self.actor_input(i, o)).collect()));
        let pairs: Vec<Option<NodeId>> = (0..self.n_agents)
            .map(|j| {
                (j != i).then(|| {
                    let rows = obs[j]
                        .iter()
                        .zip(actions.iter().map(|row| row[j]))
                        .map(|(o, a)| self.pair_vec(o, a))
                        .collect();
                    g.input(self.stack(rows))
                })
            })
            .collect();
        let critic = if target { &self.critic_target } else { &self.critic };
        let q = critic.forward(&mut g, i, ego, &pairs);
        g.value(q).clone()
    }
}

impl MultiAgentAlgorithm for Maac {
    fn num_agents(&self) -> usize {
        self.n_agents
    }

    fn name(&self) -> &'static str {
        "MAAC"
    }

    fn act(&mut self, obs: &[Vec<f32>], rng: &mut StdRng, explore: bool) -> Vec<usize> {
        obs.iter()
            .enumerate()
            .map(|(i, o)| {
                let logits = self.logits(i, o);
                if explore {
                    sample_from_logits(rng, &logits)
                } else {
                    greedy(&logits)
                }
            })
            .collect()
    }

    fn observe(&mut self, transition: JointTransition<usize>) {
        self.buffer.push(transition);
    }

    fn update(&mut self, rng: &mut StdRng) -> Option<UpdateStats> {
        let need = self.cfg.warmup.max(self.cfg.batch_size.min(self.buffer.capacity()));
        if self.buffer.len() < need {
            return None;
        }
        let batch: Vec<JointTransition<usize>> = self
            .buffer
            .sample(rng, self.cfg.batch_size)
            .into_iter()
            .cloned()
            .collect();
        let n = batch.len();

        let per_obs: Vec<Vec<Vec<f32>>> = (0..self.n_agents)
            .map(|j| batch.iter().map(|t| t.obs[j].clone()).collect())
            .collect();
        let per_next: Vec<Vec<Vec<f32>>> = (0..self.n_agents)
            .map(|j| batch.iter().map(|t| t.next_obs[j].clone()).collect())
            .collect();
        let taken: Vec<Vec<usize>> = batch.iter().map(|t| t.actions.clone()).collect();

        // Sample next joint actions from the current policies.
        let next_actions: Vec<Vec<usize>> = (0..n)
            .map(|row| {
                (0..self.n_agents)
                    .map(|j| sample_from_logits(rng, &self.logits(j, &per_next[j][row])))
                    .collect()
            })
            .collect();

        let mut critic_total = 0.0;
        let mut actor_total = 0.0;
        for i in 0..self.n_agents {
            // Soft TD target: r + γ·E_{a~π}[Q_t(s', a) − α·log π(a|o')].
            let next_q = self.critic_values(true, i, &per_next, &next_actions);
            let targets: Vec<f32> = batch
                .iter()
                .enumerate()
                .map(|(row, t)| {
                    if t.done {
                        return t.rewards[i];
                    }
                    let logits = self.logits(i, &t.next_obs[i]);
                    let probs = softmax(&logits);
                    let logps = log_softmax(&logits);
                    let soft_v: f32 = probs
                        .iter()
                        .zip(next_q.row(row))
                        .zip(&logps)
                        .map(|((p, q), lp)| p * (q - self.cfg.alpha * lp))
                        .sum();
                    t.rewards[i] + self.cfg.gamma * soft_v
                })
                .collect();

            // Critic regression on the taken actions.
            let q_all_pre = {
                let mut g = Graph::new();
                let ego = g.input(
                    self.stack(per_obs[i].iter().map(|o| self.actor_input(i, o)).collect()),
                );
                let pairs: Vec<Option<NodeId>> = (0..self.n_agents)
                    .map(|j| {
                        (j != i).then(|| {
                            let rows = per_obs[j]
                                .iter()
                                .zip(taken.iter().map(|row| row[j]))
                                .map(|(o, a)| self.pair_vec(o, a))
                                .collect();
                            g.input(self.stack(rows))
                        })
                    })
                    .collect();
                let q_all = self.critic.forward(&mut g, i, ego, &pairs);
                let own: Vec<usize> = taken.iter().map(|row| row[i]).collect();
                let mask = g.input(Tensor::one_hot(&own, self.n_actions));
                let picked = g.mul(q_all, mask);
                let q_u = g.sum_rows(picked);
                let y = g.input(column(&targets));
                let l = hero_autograd::loss::mse(&mut g, q_u, y);
                critic_total += g.value(l).item();
                let values = g.value(q_all).clone();
                g.backward(l);
                self.critic_opt.step();
                values
            };

            // Actor step: ∇ log π(a|o)·(α·log π(a|o) − (Q(a) − b)) with the
            // critic treated as constant and b the counterfactual baseline.
            let mut coeffs = Vec::with_capacity(n);
            let mut own_actions = Vec::with_capacity(n);
            let mut actor_rows = Vec::with_capacity(n);
            for (row, t) in batch.iter().enumerate() {
                let logits = self.logits(i, &t.obs[i]);
                let probs = softmax(&logits);
                let logps = log_softmax(&logits);
                let qs = q_all_pre.row(row);
                let baseline: f32 = probs.iter().zip(qs).map(|(p, q)| p * q).sum();
                let a = t.actions[i];
                coeffs.push(self.cfg.alpha * logps[a] - (qs[a] - baseline));
                own_actions.push(a);
                actor_rows.push(self.actor_input(i, &t.obs[i]));
            }
            {
                let mut g = Graph::new();
                let x = g.input(self.stack(actor_rows));
                let logits = self.actor.forward(&mut g, x);
                let logp = g.log_softmax(logits);
                let mask = g.input(Tensor::one_hot(&own_actions, self.n_actions));
                let picked = g.mul(logp, mask);
                let logp_u = g.sum_rows(picked);
                let w = g.input(column(&coeffs));
                let weighted = g.mul(logp_u, w);
                let l = g.mean(weighted);
                actor_total += g.value(l).item();
                g.backward(l);
                self.actor_opt.step();
                zero_grads(self.critic_opt.parameters());
            }
        }

        soft_update(
            &self.critic.parameters(),
            &self.critic_target.parameters(),
            self.cfg.tau,
        );
        Some(UpdateStats {
            critic_loss: critic_total / self.n_agents as f32,
            actor_loss: actor_total / self.n_agents as f32,
        })
    }
}

impl std::fmt::Debug for Maac {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Maac(agents={}, obs_dim={}, n_actions={}, heads={})",
            self.n_agents, self.obs_dim, self.n_actions, self.cfg.heads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small_cfg() -> MaacConfig {
        MaacConfig {
            hidden: 16,
            heads: 2,
            batch_size: 32,
            warmup: 32,
            ..MaacConfig::default()
        }
    }

    fn bandit(a0: usize, a1: usize) -> JointTransition<usize> {
        let r = if a0 == 1 && a1 == 1 { 1.0 } else { 0.0 };
        JointTransition {
            obs: vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            actions: vec![a0, a1],
            rewards: vec![r, r],
            next_obs: vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            done: true,
        }
    }

    #[test]
    fn attention_critic_output_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let algo = Maac::new(3, 2, 4, small_cfg(), &mut rng);
        let obs: Vec<Vec<Vec<f32>>> = (0..3).map(|_| vec![vec![0.1, 0.2]; 5]).collect();
        let actions = vec![vec![0, 1, 2]; 5];
        let q = algo.critic_values(false, 1, &obs, &actions);
        assert_eq!(q.shape(), &[5, 4]);
        assert!(q.all_finite());
    }

    #[test]
    fn critic_attends_to_other_agents_actions() {
        // Changing another agent's action must change agent 0's Q-values.
        let mut rng = StdRng::seed_from_u64(1);
        let algo = Maac::new(2, 2, 2, small_cfg(), &mut rng);
        let obs: Vec<Vec<Vec<f32>>> = (0..2).map(|_| vec![vec![0.3, -0.3]]).collect();
        let q_a = algo.critic_values(false, 0, &obs, &[vec![0, 0]]);
        let q_b = algo.critic_values(false, 0, &obs, &[vec![0, 1]]);
        assert_ne!(q_a.data(), q_b.data());
    }

    #[test]
    fn learns_a_coordination_bandit() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut algo = Maac::new(2, 2, 2, small_cfg(), &mut rng);
        for _ in 0..350 {
            let obs = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
            let acts = algo.act(&obs, &mut rng, true);
            algo.observe(bandit(acts[0], acts[1]));
            algo.update(&mut rng);
        }
        let greedy_acts = algo.act(&[vec![1.0, 0.0], vec![0.0, 1.0]], &mut rng, false);
        assert_eq!(greedy_acts, vec![1, 1]);
    }

    #[test]
    fn warmup_and_metadata() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut algo = Maac::new(2, 2, 2, small_cfg(), &mut rng);
        assert!(algo.update(&mut rng).is_none());
        assert_eq!(algo.name(), "MAAC");
        assert_eq!(algo.num_agents(), 2);
    }

    #[test]
    #[should_panic(expected = "at least two agents")]
    fn single_agent_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = Maac::new(1, 2, 2, small_cfg(), &mut rng);
    }
}

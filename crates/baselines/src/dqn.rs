//! Independent Deep Q-learning — the paper's distributed (DTDE) baseline:
//! each agent trains its own Q-network from local observations and the
//! shared team reward, exploring with ε-greedy.

use hero_autograd::nn::{Activation, Mlp, Module};
use hero_autograd::optim::{Adam, Optimizer};
use hero_autograd::{Graph, Parameter, Tensor};
use rand::rngs::StdRng;

use hero_rl::buffer::ReplayBuffer;
use hero_rl::per::PrioritizedReplay;
use hero_rl::explore::{greedy, EpsilonGreedy};
use hero_rl::schedule::Schedule;
use hero_rl::target::soft_update;
use hero_rl::transition::{DiscreteTransition, JointTransition};

use crate::common::{column, stack_rows, MultiAgentAlgorithm, UpdateStats};

/// Hyper-parameters of one DQN agent (defaults follow the paper's
/// Table I).
#[derive(Clone, Copy, Debug)]
pub struct DqnConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// Learning rate.
    pub lr: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Replay capacity.
    pub buffer_capacity: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Polyak rate τ for the target network.
    pub tau: f32,
    /// ε schedule over *action selections*.
    pub epsilon: Schedule,
    /// Minimum stored transitions before updates begin.
    pub warmup: usize,
    /// Use prioritized experience replay (Schaul et al., 2016 — the
    /// paper's reference [14]) instead of uniform sampling.
    pub prioritized: bool,
}

impl Default for DqnConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            lr: 0.01,
            gamma: 0.95,
            buffer_capacity: 100_000,
            batch_size: 1024,
            tau: 0.01,
            epsilon: Schedule::Linear {
                start: 1.0,
                end: 0.05,
                steps: 20_000,
            },
            warmup: 256,
            prioritized: false,
        }
    }
}

#[derive(Debug)]
enum Replay {
    Uniform(ReplayBuffer<DiscreteTransition>),
    Prioritized(PrioritizedReplay<DiscreteTransition>),
}

impl Replay {
    fn len(&self) -> usize {
        match self {
            Replay::Uniform(b) => b.len(),
            Replay::Prioritized(b) => b.len(),
        }
    }

    fn push(&mut self, t: DiscreteTransition) {
        match self {
            Replay::Uniform(b) => b.push(t),
            Replay::Prioritized(b) => b.push(t),
        }
    }
}

/// A single Q-learning agent.
#[derive(Debug)]
pub struct DqnAgent {
    q: Mlp,
    q_target: Mlp,
    opt: Adam,
    explore: EpsilonGreedy,
    buffer: Replay,
    cfg: DqnConfig,
    n_actions: usize,
}

impl DqnAgent {
    /// Creates an agent for `obs_dim` observations and `n_actions`
    /// discrete actions.
    pub fn new(obs_dim: usize, n_actions: usize, cfg: DqnConfig, rng: &mut StdRng) -> Self {
        let dims = [obs_dim, cfg.hidden, cfg.hidden, n_actions];
        let q = Mlp::new("dqn.q", &dims, Activation::Relu, rng);
        let q_target = Mlp::new("dqn.q_target", &dims, Activation::Relu, rng);
        hero_rl::target::hard_update(&q.parameters(), &q_target.parameters());
        let opt = Adam::new(q.parameters(), cfg.lr);
        let buffer = if cfg.prioritized {
            Replay::Prioritized(PrioritizedReplay::new(cfg.buffer_capacity, 0.6, 0.4))
        } else {
            Replay::Uniform(ReplayBuffer::new(cfg.buffer_capacity))
        };
        Self {
            q,
            q_target,
            opt,
            explore: EpsilonGreedy::new(cfg.epsilon),
            buffer,
            cfg,
            n_actions,
        }
    }

    /// Q-values for one observation.
    pub fn q_values(&self, obs: &[f32]) -> Vec<f32> {
        self.q
            .infer(&Tensor::from_vec(vec![1, obs.len()], obs.to_vec()))
            .into_data()
    }

    /// ε-greedy (or greedy) action selection.
    pub fn act(&mut self, obs: &[f32], rng: &mut StdRng, explore: bool) -> usize {
        let q = self.q_values(obs);
        if explore {
            self.explore.select(rng, &q)
        } else {
            greedy(&q)
        }
    }

    /// Stores a transition.
    pub fn observe(&mut self, t: DiscreteTransition) {
        self.buffer.push(t);
    }

    /// Number of stored transitions.
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// One TD update on a sampled mini-batch (importance-weighted when the
    /// buffer is prioritized); `None` before warm-up.
    pub fn update(&mut self, rng: &mut StdRng) -> Option<f32> {
        let need = self
            .cfg
            .warmup
            .max(self.cfg.batch_size.min(self.cfg.buffer_capacity));
        if self.buffer.len() < need {
            return None;
        }
        let (batch, weights, slots): (Vec<DiscreteTransition>, Vec<f32>, Vec<usize>) =
            match &self.buffer {
                Replay::Uniform(b) => {
                    let batch: Vec<_> =
                        b.sample(rng, self.cfg.batch_size).into_iter().cloned().collect();
                    let n = batch.len();
                    (batch, vec![1.0; n], Vec::new())
                }
                Replay::Prioritized(b) => {
                    let samples = b.sample(rng, self.cfg.batch_size);
                    let weights = samples.iter().map(|s| s.weight).collect();
                    let slots = samples.iter().map(|s| s.index).collect();
                    let batch = samples.into_iter().map(|s| s.item.clone()).collect();
                    (batch, weights, slots)
                }
            };
        let obs: Vec<&[f32]> = batch.iter().map(|t| t.obs.as_slice()).collect();
        let next: Vec<&[f32]> = batch.iter().map(|t| t.next_obs.as_slice()).collect();
        let actions: Vec<usize> = batch.iter().map(|t| t.action).collect();

        // TD target from the target network (no gradient).
        let next_q = self.q_target.infer(&stack_rows(&next));
        let targets: Vec<f32> = batch
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let row = next_q.row(i);
                let max_next = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                t.reward
                    + if t.done {
                        0.0
                    } else {
                        self.cfg.gamma * max_next
                    }
            })
            .collect();

        let mut g = Graph::new();
        let x = g.input(stack_rows(&obs));
        let q_all = self.q.forward(&mut g, x);
        let mask = g.input(Tensor::one_hot(&actions, self.n_actions));
        let picked = g.mul(q_all, mask);
        let q_sa = g.sum_rows(picked);
        let y = g.input(column(&targets));
        // Per-sample Huber, importance-weighted: 0.5·clip(d)² + δ·relu(|d|−δ).
        let d = g.sub(q_sa, y);
        let clipped = g.clamp(d, -1.0, 1.0);
        let quad = g.mul(clipped, clipped);
        let quad = g.scale(quad, 0.5);
        let dn = g.neg(d);
        let rp = g.relu(d);
        let rn = g.relu(dn);
        let abs_d = g.add(rp, rn);
        let excess = g.add_scalar(abs_d, -1.0);
        let lin = g.relu(excess);
        let per_sample = g.add(quad, lin);
        let w = g.input(column(&weights));
        let weighted = g.mul(per_sample, w);
        let l = g.mean(weighted);
        let value = g.value(l).item();
        let td_abs: Vec<f32> = g.value(d).data().iter().map(|x| x.abs()).collect();
        g.backward(l);
        self.opt.step();
        if let Replay::Prioritized(b) = &mut self.buffer {
            for (slot, err) in slots.iter().zip(&td_abs) {
                b.update_priority(*slot, *err);
            }
        }
        soft_update(
            &self.q.parameters(),
            &self.q_target.parameters(),
            self.cfg.tau,
        );
        Some(value)
    }

    /// Trainable parameters (for checkpointing).
    pub fn parameters(&self) -> Vec<Parameter> {
        self.q.parameters()
    }
}

/// The multi-agent wrapper: one independent [`DqnAgent`] per agent.
#[derive(Debug)]
pub struct IndependentDqn {
    agents: Vec<DqnAgent>,
}

impl IndependentDqn {
    /// Creates `n_agents` independent learners.
    pub fn new(
        n_agents: usize,
        obs_dim: usize,
        n_actions: usize,
        cfg: DqnConfig,
        rng: &mut StdRng,
    ) -> Self {
        let agents = (0..n_agents)
            .map(|_| DqnAgent::new(obs_dim, n_actions, cfg, rng))
            .collect();
        Self { agents }
    }

    /// The underlying agents.
    pub fn agents(&self) -> &[DqnAgent] {
        &self.agents
    }
}

impl MultiAgentAlgorithm for IndependentDqn {
    fn num_agents(&self) -> usize {
        self.agents.len()
    }

    fn name(&self) -> &'static str {
        "DQN"
    }

    fn act(&mut self, obs: &[Vec<f32>], rng: &mut StdRng, explore: bool) -> Vec<usize> {
        self.agents
            .iter_mut()
            .zip(obs)
            .map(|(a, o)| a.act(o, rng, explore))
            .collect()
    }

    fn observe(&mut self, t: JointTransition<usize>) {
        for (i, agent) in self.agents.iter_mut().enumerate() {
            agent.observe(DiscreteTransition {
                obs: t.obs[i].clone(),
                action: t.actions[i],
                reward: t.rewards[i],
                next_obs: t.next_obs[i].clone(),
                done: t.done,
            });
        }
    }

    fn update(&mut self, rng: &mut StdRng) -> Option<UpdateStats> {
        let mut total = 0.0;
        let mut count = 0;
        for agent in &mut self.agents {
            if let Some(l) = agent.update(rng) {
                total += l;
                count += 1;
            }
        }
        (count > 0).then(|| UpdateStats {
            critic_loss: total / count as f32,
            actor_loss: 0.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small_cfg() -> DqnConfig {
        DqnConfig {
            batch_size: 16,
            warmup: 16,
            hidden: 16,
            lr: 0.02,
            epsilon: Schedule::Constant(0.2),
            ..DqnConfig::default()
        }
    }

    /// A 2-state chain: action 1 in state [1,0] yields reward 1.
    fn push_chain(agent: &mut DqnAgent) {
        for _ in 0..8 {
            agent.observe(DiscreteTransition {
                obs: vec![1.0, 0.0],
                action: 1,
                reward: 1.0,
                next_obs: vec![0.0, 1.0],
                done: true,
            });
            agent.observe(DiscreteTransition {
                obs: vec![1.0, 0.0],
                action: 0,
                reward: 0.0,
                next_obs: vec![0.0, 1.0],
                done: true,
            });
        }
    }

    #[test]
    fn no_update_before_warmup() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut agent = DqnAgent::new(2, 2, small_cfg(), &mut rng);
        assert!(agent.update(&mut rng).is_none());
    }

    #[test]
    fn learns_a_one_step_bandit() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut agent = DqnAgent::new(2, 2, small_cfg(), &mut rng);
        push_chain(&mut agent);
        for _ in 0..150 {
            agent.update(&mut rng).unwrap();
        }
        let q = agent.q_values(&[1.0, 0.0]);
        assert!(
            q[1] > q[0] + 0.3,
            "action 1 must dominate after training: {q:?}"
        );
        assert_eq!(agent.act(&[1.0, 0.0], &mut rng, false), 1);
    }

    #[test]
    fn update_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut agent = DqnAgent::new(2, 2, small_cfg(), &mut rng);
        push_chain(&mut agent);
        let first = agent.update(&mut rng).unwrap();
        for _ in 0..80 {
            agent.update(&mut rng);
        }
        let last = agent.update(&mut rng).unwrap();
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn prioritized_variant_learns_the_bandit_too() {
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = DqnConfig {
            prioritized: true,
            ..small_cfg()
        };
        let mut agent = DqnAgent::new(2, 2, cfg, &mut rng);
        push_chain(&mut agent);
        for _ in 0..150 {
            agent.update(&mut rng).unwrap();
        }
        let q = agent.q_values(&[1.0, 0.0]);
        assert!(q[1] > q[0] + 0.3, "PER agent must also learn: {q:?}");
    }

    #[test]
    fn wrapper_routes_per_agent_rewards() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut algo = IndependentDqn::new(2, 2, 2, small_cfg(), &mut rng);
        assert_eq!(algo.num_agents(), 2);
        assert_eq!(algo.name(), "DQN");
        let t = JointTransition {
            obs: vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            actions: vec![0, 1],
            rewards: vec![0.5, -0.5],
            next_obs: vec![vec![0.0, 1.0], vec![1.0, 0.0]],
            done: false,
        };
        algo.observe(t);
        assert_eq!(algo.agents()[0].buffer_len(), 1);
        assert_eq!(algo.agents()[1].buffer_len(), 1);
        let acts = algo.act(&[vec![1.0, 0.0], vec![0.0, 1.0]], &mut rng, true);
        assert_eq!(acts.len(), 2);
        assert!(acts.iter().all(|&a| a < 2));
    }
}

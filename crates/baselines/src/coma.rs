//! COMA — counterfactual multi-agent policy gradients (Foerster et al.,
//! 2018). A single centralized critic estimates `Q(s, (u^{-i}, ·))` for
//! every action of agent `i`; the actor gradient uses the counterfactual
//! advantage `A_i = Q(s, u_i) − Σ_a π_i(a|o_i)·Q(s, a)`, which solves the
//! multi-agent credit-assignment problem without per-agent critics.
//!
//! COMA is on-policy: transitions collected since the last update are
//! consumed in one batched gradient pass and then discarded.

use hero_autograd::nn::{Activation, Mlp, Module};
use hero_autograd::optim::{Adam, Optimizer};
use hero_autograd::{loss, Graph, Parameter, Tensor};
use rand::rngs::StdRng;

use hero_rl::explore::greedy;
use hero_rl::rng::{sample_from_logits, softmax};
use hero_rl::target::{hard_update, soft_update};
use hero_rl::transition::JointTransition;

use crate::common::{column, MultiAgentAlgorithm, UpdateStats};

/// COMA hyper-parameters (defaults follow the paper's Table I).
#[derive(Clone, Copy, Debug)]
pub struct ComaConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// Learning rate for actor and critic.
    pub lr: f32,
    /// Discount factor γ.
    pub gamma: f32,
    /// Polyak rate τ for the critic target.
    pub tau: f32,
    /// Entropy regularization weight on the actor.
    pub entropy_coef: f32,
    /// Minimum stored transitions before an update runs.
    pub min_batch: usize,
}

impl Default for ComaConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            lr: 0.01,
            gamma: 0.95,
            tau: 0.01,
            entropy_coef: 0.01,
            min_batch: 32,
        }
    }
}

/// The COMA learner: a shared actor (conditioned on an agent one-hot) and
/// one centralized critic.
pub struct Coma {
    actor: Mlp,
    critic: Mlp,
    critic_target: Mlp,
    actor_opt: Adam,
    critic_opt: Adam,
    episode_buffer: Vec<JointTransition<usize>>,
    cfg: ComaConfig,
    n_agents: usize,
    obs_dim: usize,
    n_actions: usize,
}

impl Coma {
    /// Creates a learner for `n_agents` agents with `obs_dim` local
    /// observations and `n_actions` discrete actions each.
    pub fn new(
        n_agents: usize,
        obs_dim: usize,
        n_actions: usize,
        cfg: ComaConfig,
        rng: &mut StdRng,
    ) -> Self {
        let actor_dims = [obs_dim + n_agents, cfg.hidden, cfg.hidden, n_actions];
        let critic_in = n_agents * obs_dim + n_agents + (n_agents - 1) * n_actions;
        let critic_dims = [critic_in, cfg.hidden, cfg.hidden, n_actions];
        let actor = Mlp::new("coma.actor", &actor_dims, Activation::Relu, rng);
        let critic = Mlp::new("coma.critic", &critic_dims, Activation::Relu, rng);
        let critic_target = Mlp::new("coma.critic_t", &critic_dims, Activation::Relu, rng);
        hard_update(&critic.parameters(), &critic_target.parameters());
        let actor_opt = Adam::new(actor.parameters(), cfg.lr);
        let critic_opt = Adam::new(critic.parameters(), cfg.lr);
        Self {
            actor,
            critic,
            critic_target,
            actor_opt,
            critic_opt,
            episode_buffer: Vec::new(),
            cfg,
            n_agents,
            obs_dim,
            n_actions,
        }
    }

    /// Transitions waiting for the next on-policy update.
    pub fn pending(&self) -> usize {
        self.episode_buffer.len()
    }

    /// Trainable parameters (actor then critic) for checkpointing.
    pub fn parameters(&self) -> Vec<Parameter> {
        let mut p = self.actor.parameters();
        p.extend(self.critic.parameters());
        p
    }

    fn actor_input(&self, agent: usize, obs: &[f32]) -> Vec<f32> {
        let mut v = obs.to_vec();
        for j in 0..self.n_agents {
            v.push(if j == agent { 1.0 } else { 0.0 });
        }
        v
    }

    /// Policy logits of `agent` for a local observation.
    pub fn logits(&self, agent: usize, obs: &[f32]) -> Vec<f32> {
        let input = self.actor_input(agent, obs);
        self.actor
            .infer(&Tensor::from_vec(vec![1, input.len()], input))
            .into_data()
    }

    fn critic_input(&self, agent: usize, t: &JointTransition<usize>, use_next: bool) -> Vec<f32> {
        let obs = if use_next { &t.next_obs } else { &t.obs };
        let mut v = Vec::with_capacity(
            self.n_agents * self.obs_dim + self.n_agents + (self.n_agents - 1) * self.n_actions,
        );
        for o in obs {
            v.extend_from_slice(o);
        }
        for j in 0..self.n_agents {
            v.push(if j == agent { 1.0 } else { 0.0 });
        }
        for (j, &a) in t.actions.iter().enumerate() {
            if j == agent {
                continue;
            }
            for k in 0..self.n_actions {
                v.push(if k == a { 1.0 } else { 0.0 });
            }
        }
        v
    }

    fn stack(&self, rows: Vec<Vec<f32>>) -> Tensor {
        let n = rows.len();
        let d = rows[0].len();
        let mut data = Vec::with_capacity(n * d);
        for r in rows {
            data.extend(r);
        }
        Tensor::from_vec(vec![n, d], data)
    }
}

impl MultiAgentAlgorithm for Coma {
    fn num_agents(&self) -> usize {
        self.n_agents
    }

    fn name(&self) -> &'static str {
        "COMA"
    }

    fn act(&mut self, obs: &[Vec<f32>], rng: &mut StdRng, explore: bool) -> Vec<usize> {
        obs.iter()
            .enumerate()
            .map(|(i, o)| {
                let logits = self.logits(i, o);
                if explore {
                    sample_from_logits(rng, &logits)
                } else {
                    greedy(&logits)
                }
            })
            .collect()
    }

    fn observe(&mut self, transition: JointTransition<usize>) {
        self.episode_buffer.push(transition);
    }

    fn update(&mut self, _rng: &mut StdRng) -> Option<UpdateStats> {
        if self.episode_buffer.len() < self.cfg.min_batch {
            return None;
        }
        let batch = std::mem::take(&mut self.episode_buffer);
        let n = batch.len();
        let mut critic_total = 0.0;
        let mut actor_total = 0.0;

        for i in 0..self.n_agents {
            // Q_target(s', ·) under the *stored* next joint context — the
            // expected SARSA target over agent i's current policy.
            let next_inputs =
                self.stack(batch.iter().map(|t| self.critic_input(i, t, true)).collect());
            let next_q = self.critic_target.infer(&next_inputs);
            let targets: Vec<f32> = batch
                .iter()
                .enumerate()
                .map(|(row, t)| {
                    if t.done {
                        return t.rewards[i];
                    }
                    let probs = softmax(&self.logits(i, &t.next_obs[i]));
                    let expected: f32 = probs
                        .iter()
                        .zip(next_q.row(row))
                        .map(|(p, q)| p * q)
                        .sum();
                    t.rewards[i] + self.cfg.gamma * expected
                })
                .collect();

            // Critic regression on the taken actions.
            let taken: Vec<usize> = batch.iter().map(|t| t.actions[i]).collect();
            let q_all_values = {
                let inputs =
                    self.stack(batch.iter().map(|t| self.critic_input(i, t, false)).collect());
                let mut g = Graph::new();
                let x = g.input(inputs);
                let q_all = self.critic.forward(&mut g, x);
                let mask = g.input(Tensor::one_hot(&taken, self.n_actions));
                let picked = g.mul(q_all, mask);
                let q_u = g.sum_rows(picked);
                let y = g.input(column(&targets));
                let l = loss::mse(&mut g, q_u, y);
                critic_total += g.value(l).item();
                let q_values = g.value(q_all).clone();
                g.backward(l);
                self.critic_opt.step();
                q_values
            };

            // Counterfactual advantage with the (pre-update) critic values.
            let mut advantages = Vec::with_capacity(n);
            let mut actor_inputs = Vec::with_capacity(n);
            for (row, t) in batch.iter().enumerate() {
                let probs = softmax(&self.logits(i, &t.obs[i]));
                let qs = q_all_values.row(row);
                let baseline: f32 = probs.iter().zip(qs).map(|(p, q)| p * q).sum();
                advantages.push(qs[t.actions[i]] - baseline);
                actor_inputs.push(self.actor_input(i, &t.obs[i]));
            }

            // Policy-gradient step: −E[log π(u|o)·A] − entropy bonus.
            {
                let mut g = Graph::new();
                let x = g.input(self.stack(actor_inputs));
                let logits = self.actor.forward(&mut g, x);
                let logp = g.log_softmax(logits);
                let mask = g.input(Tensor::one_hot(&taken, self.n_actions));
                let picked = g.mul(logp, mask);
                let logp_u = g.sum_rows(picked);
                let adv = g.input(column(&advantages));
                let weighted = g.mul(logp_u, adv);
                let pg = g.mean(weighted);
                let pg_loss = g.neg(pg);
                let entropy = loss::categorical_entropy(&mut g, logits);
                let ent_term = g.scale(entropy, -self.cfg.entropy_coef);
                let l = g.add(pg_loss, ent_term);
                actor_total += g.value(l).item();
                g.backward(l);
                self.actor_opt.step();
                hero_autograd::zero_grads(self.critic_opt.parameters());
            }
        }

        soft_update(
            &self.critic.parameters(),
            &self.critic_target.parameters(),
            self.cfg.tau,
        );
        Some(UpdateStats {
            critic_loss: critic_total / self.n_agents as f32,
            actor_loss: actor_total / self.n_agents as f32,
        })
    }
}

impl std::fmt::Debug for Coma {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Coma(agents={}, obs_dim={}, n_actions={})",
            self.n_agents, self.obs_dim, self.n_actions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small_cfg() -> ComaConfig {
        ComaConfig {
            hidden: 16,
            min_batch: 16,
            ..ComaConfig::default()
        }
    }

    fn bandit(a0: usize, a1: usize) -> JointTransition<usize> {
        let r = if a0 == 1 && a1 == 1 { 1.0 } else { 0.0 };
        JointTransition {
            obs: vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            actions: vec![a0, a1],
            rewards: vec![r, r],
            next_obs: vec![vec![1.0, 0.0], vec![0.0, 1.0]],
            done: true,
        }
    }

    #[test]
    fn update_requires_min_batch_and_clears_buffer() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut algo = Coma::new(2, 2, 2, small_cfg(), &mut rng);
        for _ in 0..10 {
            algo.observe(bandit(0, 0));
        }
        assert!(algo.update(&mut rng).is_none(), "below min batch");
        for _ in 0..10 {
            algo.observe(bandit(0, 0));
        }
        assert!(algo.update(&mut rng).is_some());
        assert_eq!(algo.pending(), 0, "on-policy data consumed");
    }

    #[test]
    fn learns_a_coordination_bandit() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut algo = Coma::new(2, 2, 2, small_cfg(), &mut rng);
        for _ in 0..800 {
            let obs = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
            let acts = algo.act(&obs, &mut rng, true);
            algo.observe(bandit(acts[0], acts[1]));
            algo.update(&mut rng);
        }
        let greedy_acts = algo.act(&[vec![1.0, 0.0], vec![0.0, 1.0]], &mut rng, false);
        assert_eq!(greedy_acts, vec![1, 1]);
    }

    #[test]
    fn counterfactual_advantage_sums_to_zero_under_policy() {
        // By construction Σ_a π(a)·A(a) = 0; spot-check through public
        // pieces: advantage of the baseline action equals Q − baseline.
        let mut rng = StdRng::seed_from_u64(2);
        let algo = Coma::new(2, 2, 3, small_cfg(), &mut rng);
        let logits = algo.logits(0, &[0.5, -0.5]);
        let probs = softmax(&logits);
        let qs = [1.0f32, 2.0, 3.0];
        let baseline: f32 = probs.iter().zip(qs).map(|(p, q)| p * q).sum();
        let weighted_adv: f32 = probs
            .iter()
            .zip(qs)
            .map(|(p, q)| p * (q - baseline))
            .sum();
        assert!(weighted_adv.abs() < 1e-5);
    }

    #[test]
    fn act_valid_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut algo = Coma::new(3, 2, 4, small_cfg(), &mut rng);
        let obs = vec![vec![0.0, 0.0]; 3];
        for _ in 0..10 {
            let acts = algo.act(&obs, &mut rng, true);
            assert!(acts.iter().all(|&a| a < 4));
        }
        assert_eq!(algo.name(), "COMA");
        assert_eq!(algo.num_agents(), 3);
    }
}

//! # hero-baselines
//!
//! The (multi-agent) reinforcement-learning algorithms compared in the
//! HERO paper's evaluation (Sec. V-A), all built on `hero-autograd` and
//! `hero-rl`:
//!
//! * [`dqn::IndependentDqn`] — distributed Q-learning with ε-greedy
//!   exploration,
//! * [`coma::Coma`] — centralized critic with counterfactual advantages,
//! * [`maddpg::Maddpg`] — per-agent centralized critics with Gumbel-softmax
//!   actors,
//! * [`maac::Maac`] — multi-head attention critics with parameter sharing,
//! * [`sac::SacAgent`] — soft actor–critic for continuous control (HERO's
//!   low-level learner),
//! * [`ddpg::DdpgAgent`] — deterministic policy gradients (the MADDPG
//!   building block).
//!
//! Every multi-agent algorithm implements
//! [`common::MultiAgentAlgorithm`], so the experiment harness can swap
//! them freely.
//!
//! ## Quickstart
//!
//! ```
//! use hero_baselines::common::MultiAgentAlgorithm;
//! use hero_baselines::dqn::{DqnConfig, IndependentDqn};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut algo = IndependentDqn::new(2, 4, 3, DqnConfig::default(), &mut rng);
//! let actions = algo.act(&[vec![0.0; 4], vec![0.0; 4]], &mut rng, true);
//! assert_eq!(actions.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod coma;
pub mod common;
pub mod ddpg;
pub mod dqn;
pub mod maac;
pub mod maddpg;
pub mod sac;

pub use coma::{Coma, ComaConfig};
pub use common::{MultiAgentAlgorithm, UpdateStats};
pub use ddpg::{DdpgAgent, DdpgConfig};
pub use dqn::{DqnAgent, DqnConfig, IndependentDqn};
pub use maac::{Maac, MaacConfig};
pub use maddpg::{Maddpg, MaddpgConfig};
pub use sac::{GaussianActor, SacAgent, SacConfig};

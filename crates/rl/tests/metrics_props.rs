//! Property-based coverage of the metrics layer: `MovingAverage` window
//! semantics against a naive reference, and `Recorder::write_csv`
//! round-trips.

use hero_rl::metrics::{MovingAverage, Recorder};
use proptest::prelude::*;

/// Naive reference: mean of the last `window` values of `seen`.
fn naive_window_mean(seen: &[f32], window: usize) -> f32 {
    if seen.is_empty() {
        return 0.0;
    }
    let tail = &seen[seen.len().saturating_sub(window)..];
    tail.iter().sum::<f32>() / tail.len() as f32
}

/// Parses the `index,name1,name2,…` CSV layout back into named series.
fn parse_recorder_csv(text: &str) -> Vec<(String, Vec<f32>)> {
    let mut lines = text.lines();
    let header = lines.next().expect("header row");
    let names: Vec<String> = header.split(',').skip(1).map(str::to_string).collect();
    let mut series: Vec<(String, Vec<f32>)> =
        names.into_iter().map(|n| (n, Vec::new())).collect();
    for line in lines {
        for (cell, (_, values)) in line.split(',').skip(1).zip(series.iter_mut()) {
            if !cell.is_empty() {
                values.push(cell.parse().expect("finite float cell"));
            }
        }
    }
    series
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After each push the average equals the mean of the last `window`
    /// observations, and the window never holds more than `window` items.
    fn moving_average_matches_naive_reference(
        values in prop::collection::vec(-1.0e3f32..1.0e3, 1..80),
        window in 1usize..20,
    ) {
        let mut ma = MovingAverage::new(window);
        let mut seen: Vec<f32> = Vec::new();
        for &v in &values {
            seen.push(v);
            let got = ma.push(v);
            let want = naive_window_mean(&seen, window);
            let scale = 1.0 + want.abs();
            prop_assert!(
                (got - want).abs() <= 1e-3 * scale,
                "after {} pushes window {}: got {} want {}",
                seen.len(), window, got, want
            );
            prop_assert!(ma.len() <= window);
            prop_assert_eq!(ma.len(), seen.len().min(window));
        }
    }

    /// `value()` is stable between pushes and `0.0` when empty.
    fn moving_average_value_is_idempotent(window in 1usize..10, v in -10.0f32..10.0) {
        let mut ma = MovingAverage::new(window);
        prop_assert_eq!(ma.value(), 0.0);
        prop_assert!(ma.is_empty());
        ma.push(v);
        prop_assert_eq!(ma.value(), ma.value());
        prop_assert!(!ma.is_empty());
    }

    /// Writing a recorder to CSV and parsing the text back yields exactly
    /// the recorded series (same names, same order, same values), with no
    /// NaN/Inf tokens in the file.
    fn recorder_csv_round_trips(
        a in prop::collection::vec(-1.0e4f32..1.0e4, 0..30),
        b in prop::collection::vec(-1.0e4f32..1.0e4, 0..30),
    ) {
        let mut rec = Recorder::new();
        for &v in &a {
            rec.push("alpha", v);
        }
        for &v in &b {
            rec.push("beta", v);
        }
        let mut buf = Vec::new();
        rec.write_csv_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        prop_assert!(!text.contains("NaN") && !text.contains("inf"));
        let parsed = parse_recorder_csv(&text);
        let mut expected = Vec::new();
        if !a.is_empty() {
            expected.push(("alpha".to_string(), a.clone()));
        }
        if !b.is_empty() {
            expected.push(("beta".to_string(), b.clone()));
        }
        // Round-trip through shortest-representation Display is exact for
        // f32, so the parsed series must be bit-identical.
        prop_assert_eq!(parsed, expected);
    }
}

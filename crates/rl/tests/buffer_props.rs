//! Property tests for the replay buffers and the sum tree.

use hero_rl::buffer::ReplayBuffer;
use hero_rl::per::{PrioritizedReplay, SumTree};
use hero_rl::schedule::Schedule;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A ring buffer never exceeds capacity and always retains exactly the
    /// most recent `min(pushes, capacity)` items.
    fn ring_buffer_retains_most_recent(
        capacity in 1usize..64,
        pushes in 0usize..200,
    ) {
        let mut buf = ReplayBuffer::new(capacity);
        for i in 0..pushes {
            buf.push(i);
        }
        prop_assert_eq!(buf.len(), pushes.min(capacity));
        let mut items: Vec<usize> = buf.iter().copied().collect();
        items.sort_unstable();
        let expected: Vec<usize> = (pushes.saturating_sub(capacity)..pushes).collect();
        prop_assert_eq!(items, expected);
    }

    /// Sampled indices are always in range and distinct.
    fn sample_indices_valid(capacity in 1usize..128, n in 0usize..256) {
        let mut buf = ReplayBuffer::new(capacity);
        for i in 0..capacity {
            buf.push(i);
        }
        let mut rng = StdRng::seed_from_u64(7);
        let idx = buf.sample_indices(&mut rng, n);
        prop_assert_eq!(idx.len(), n.min(capacity));
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), idx.len(), "indices must be distinct");
        prop_assert!(idx.iter().all(|&i| i < capacity));
    }

    /// The sum tree's total always equals the sum of leaf priorities, under
    /// any sequence of sets.
    fn sum_tree_total_consistent(
        capacity in 1usize..64,
        ops in prop::collection::vec((0usize..64, 0.0f32..10.0), 1..100),
    ) {
        let mut tree = SumTree::new(capacity);
        let mut shadow = vec![0.0f32; capacity];
        for (slot, p) in ops {
            let slot = slot % capacity;
            tree.set(slot, p);
            shadow[slot] = p;
        }
        let expected: f32 = shadow.iter().sum();
        prop_assert!((tree.total() - expected).abs() < expected.max(1.0) * 1e-4);
        for (i, &p) in shadow.iter().enumerate() {
            prop_assert!((tree.get(i) - p).abs() < 1e-6);
        }
    }

    /// `find` always returns a leaf with positive priority.
    fn sum_tree_find_hits_positive_leaf(
        capacity in 2usize..64,
        priorities in prop::collection::vec(0.0f32..5.0, 2..64),
        mass_fraction in 0.0f32..1.0,
    ) {
        let mut tree = SumTree::new(capacity);
        let mut any = false;
        for (i, &p) in priorities.iter().take(capacity).enumerate() {
            tree.set(i, p);
            any |= p > 0.0;
        }
        prop_assume!(any);
        let leaf = tree.find(mass_fraction * tree.total());
        prop_assert!(leaf < capacity);
        prop_assert!(tree.get(leaf) > 0.0, "found a zero-priority leaf");
    }

    /// Prioritized sampling never returns evicted slots.
    fn prioritized_never_returns_stale(capacity in 2usize..32, pushes in 33usize..128) {
        let mut buf = PrioritizedReplay::new(capacity, 0.6, 0.4);
        for i in 0..pushes {
            buf.push(i);
        }
        let mut rng = StdRng::seed_from_u64(3);
        for s in buf.sample(&mut rng, 64) {
            prop_assert!(*s.item >= pushes - capacity, "stale item {}", s.item);
        }
    }

    /// Schedules are monotone in the direction of their endpoints.
    fn linear_schedule_monotone(start in -5.0f32..5.0, end in -5.0f32..5.0, steps in 1usize..100) {
        let s = Schedule::Linear { start, end, steps };
        let mut prev = s.value(0);
        prop_assert!((prev - start).abs() < 1e-5);
        for t in 1..steps + 10 {
            let v = s.value(t);
            if end >= start {
                prop_assert!(v >= prev - 1e-5);
            } else {
                prop_assert!(v <= prev + 1e-5);
            }
            prev = v;
        }
        prop_assert!((s.value(steps + 100) - end).abs() < 1e-5);
    }
}

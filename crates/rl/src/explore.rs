//! Exploration strategies: ε-greedy for discrete policies, Gaussian and
//! Ornstein–Uhlenbeck noise for continuous ones.

use rand::Rng;

use crate::rng::standard_normal;
use crate::schedule::Schedule;

/// ε-greedy action selection over a scheduled exploration rate (the
/// strategy the paper's Independent DQN baseline uses).
#[derive(Clone, Copy, Debug)]
pub struct EpsilonGreedy {
    schedule: Schedule,
    step: usize,
}

impl EpsilonGreedy {
    /// Creates a strategy from a schedule over environment steps.
    pub fn new(schedule: Schedule) -> Self {
        Self { schedule, step: 0 }
    }

    /// Current ε.
    pub fn epsilon(&self) -> f32 {
        self.schedule.value(self.step)
    }

    /// Advances the schedule one step.
    pub fn advance(&mut self) {
        self.step += 1;
    }

    /// Picks the greedy action or (with probability ε) a uniform action.
    ///
    /// # Panics
    ///
    /// Panics when `q_values` is empty.
    pub fn select<R: Rng + ?Sized>(&mut self, rng: &mut R, q_values: &[f32]) -> usize {
        assert!(!q_values.is_empty(), "epsilon-greedy needs actions");
        let eps = self.epsilon();
        self.advance();
        if rng.gen::<f32>() < eps {
            rng.gen_range(0..q_values.len())
        } else {
            greedy(q_values)
        }
    }
}

/// Index of the maximum value (first on ties).
///
/// # Panics
///
/// Panics when `values` is empty.
pub fn greedy(values: &[f32]) -> usize {
    assert!(!values.is_empty(), "greedy over empty values");
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

/// Additive i.i.d. Gaussian action noise with a scheduled scale.
#[derive(Clone, Copy, Debug)]
pub struct GaussianNoise {
    schedule: Schedule,
    step: usize,
}

impl GaussianNoise {
    /// Creates Gaussian noise with the given std schedule.
    pub fn new(schedule: Schedule) -> Self {
        Self { schedule, step: 0 }
    }

    /// Perturbs `action` in place, clamping into `[lo, hi]`.
    pub fn apply<R: Rng + ?Sized>(&mut self, rng: &mut R, action: &mut [f32], lo: f32, hi: f32) {
        let std = self.schedule.value(self.step);
        self.step += 1;
        for a in action.iter_mut() {
            *a = (*a + standard_normal(rng) * std).clamp(lo, hi);
        }
    }
}

/// Ornstein–Uhlenbeck process noise (temporally correlated), as used by
/// the original DDPG.
#[derive(Clone, Debug)]
pub struct OrnsteinUhlenbeck {
    theta: f32,
    sigma: f32,
    state: Vec<f32>,
}

impl OrnsteinUhlenbeck {
    /// Creates an OU process of dimension `dim` with mean-reversion
    /// `theta` and volatility `sigma`.
    pub fn new(dim: usize, theta: f32, sigma: f32) -> Self {
        Self {
            theta,
            sigma,
            state: vec![0.0; dim],
        }
    }

    /// Resets the internal state to zero (call between episodes).
    pub fn reset(&mut self) {
        for s in &mut self.state {
            *s = 0.0;
        }
    }

    /// Advances the process and returns a view of the noise vector.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> &[f32] {
        for s in &mut self.state {
            *s += self.theta * -*s + self.sigma * standard_normal(rng);
        }
        &self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn greedy_picks_max() {
        assert_eq!(greedy(&[0.0, 3.0, 1.0]), 1);
        assert_eq!(greedy(&[5.0]), 0);
        assert_eq!(greedy(&[2.0, 2.0]), 0, "ties go to the first");
    }

    #[test]
    fn epsilon_zero_is_always_greedy() {
        let mut e = EpsilonGreedy::new(Schedule::Constant(0.0));
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            assert_eq!(e.select(&mut rng, &[0.1, 0.9, 0.2]), 1);
        }
    }

    #[test]
    fn epsilon_one_is_roughly_uniform() {
        let mut e = EpsilonGreedy::new(Schedule::Constant(1.0));
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        for _ in 0..6000 {
            counts[e.select(&mut rng, &[0.1, 0.9, 0.2])] += 1;
        }
        for c in counts {
            let f = c as f32 / 6000.0;
            assert!((f - 1.0 / 3.0).abs() < 0.05, "{f}");
        }
    }

    #[test]
    fn epsilon_decays_with_schedule() {
        let mut e = EpsilonGreedy::new(Schedule::Linear {
            start: 1.0,
            end: 0.0,
            steps: 10,
        });
        assert_eq!(e.epsilon(), 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            e.select(&mut rng, &[1.0, 0.0]);
        }
        assert_eq!(e.epsilon(), 0.0);
    }

    #[test]
    fn gaussian_noise_clamps() {
        let mut n = GaussianNoise::new(Schedule::Constant(10.0));
        let mut rng = StdRng::seed_from_u64(3);
        let mut a = vec![0.0f32; 32];
        n.apply(&mut rng, &mut a, -1.0, 1.0);
        assert!(a.iter().all(|v| (-1.0..=1.0).contains(v)));
        assert!(a.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn ou_noise_is_correlated_and_resettable() {
        let mut ou = OrnsteinUhlenbeck::new(1, 0.15, 0.2);
        let mut rng = StdRng::seed_from_u64(4);
        let mut prev = 0.0f32;
        let mut corr_hits = 0;
        for _ in 0..200 {
            let s = ou.sample(&mut rng)[0];
            if (s - prev).abs() < 0.6 {
                corr_hits += 1;
            }
            prev = s;
        }
        assert!(corr_hits > 150, "consecutive OU samples should stay close");
        ou.reset();
        assert_eq!(ou.state, vec![0.0]);
    }
}

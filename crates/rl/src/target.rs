//! Target-network updates (Table I's "target network update rate"
//! τ = 0.01).

use hero_autograd::Parameter;

/// Polyak soft update: `target ← τ·online + (1−τ)·target`.
///
/// # Panics
///
/// Panics when the slices differ in length or any parameter pair differs
/// in shape, or when `tau` is outside `[0, 1]`.
pub fn soft_update(online: &[Parameter], target: &[Parameter], tau: f32) {
    assert!((0.0..=1.0).contains(&tau), "tau must lie in [0, 1]");
    assert_eq!(online.len(), target.len(), "parameter count mismatch");
    for (src, dst) in online.iter().zip(target) {
        let src_value = src.value().clone();
        dst.apply_update(|value, _| {
            assert_eq!(
                value.shape(),
                src_value.shape(),
                "parameter shape mismatch in soft update"
            );
            for (d, s) in value.data_mut().iter_mut().zip(src_value.data()) {
                *d = tau * s + (1.0 - tau) * *d;
            }
        });
    }
}

/// Hard update: copies online weights into the target verbatim
/// (re-exported convenience over [`hero_autograd::copy_params`]).
pub fn hard_update(online: &[Parameter], target: &[Parameter]) {
    hero_autograd::copy_params(online, target);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_autograd::Tensor;

    #[test]
    fn soft_update_moves_toward_online() {
        let online = vec![Parameter::new("o", Tensor::from_slice(&[1.0, 1.0]))];
        let target = vec![Parameter::new("t", Tensor::from_slice(&[0.0, 0.0]))];
        soft_update(&online, &target, 0.1);
        assert_eq!(target[0].value().data(), &[0.1, 0.1]);
        soft_update(&online, &target, 0.1);
        assert!((target[0].value().data()[0] - 0.19).abs() < 1e-6);
    }

    #[test]
    fn tau_one_is_hard_update() {
        let online = vec![Parameter::new("o", Tensor::from_slice(&[3.0]))];
        let target = vec![Parameter::new("t", Tensor::from_slice(&[-1.0]))];
        soft_update(&online, &target, 1.0);
        assert_eq!(target[0].value().data(), &[3.0]);
    }

    #[test]
    fn tau_zero_is_identity() {
        let online = vec![Parameter::new("o", Tensor::from_slice(&[3.0]))];
        let target = vec![Parameter::new("t", Tensor::from_slice(&[-1.0]))];
        soft_update(&online, &target, 0.0);
        assert_eq!(target[0].value().data(), &[-1.0]);
    }

    #[test]
    fn hard_update_copies() {
        let online = vec![Parameter::new("o", Tensor::from_slice(&[5.0, 6.0]))];
        let target = vec![Parameter::new("t", Tensor::from_slice(&[0.0, 0.0]))];
        hard_update(&online, &target);
        assert_eq!(target[0].value().data(), &[5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "count mismatch")]
    fn mismatched_lists_rejected() {
        let online = vec![Parameter::new("o", Tensor::from_slice(&[1.0]))];
        soft_update(&online, &[], 0.5);
    }
}

//! Binary snapshot codec for RL state: replay buffers, prioritized replay
//! (items + priorities), RNG streams, and metric recorders.
//!
//! Everything encodes to compact little-endian blobs intended to be stored
//! as opaque sections of a v2 checkpoint (`hero_autograd::serialize`).
//! Decoding is fully bounds-checked: corrupted input yields a typed
//! [`SnapshotError`], never a panic or unbounded allocation.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use rand::rngs::StdRng;

use crate::buffer::ReplayBuffer;
use crate::metrics::Recorder;
use crate::per::PrioritizedReplay;
use crate::transition::{JointTransition, OptionTransition, Transition};

/// Error decoding a snapshot blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The blob ended before all declared data was read.
    Truncated,
    /// A structural invariant is violated (impossible lengths, invalid
    /// buffer state, non-UTF-8 strings, ...).
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot blob is truncated"),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl Error for SnapshotError {}

/// Bounds-checked little-endian reader over a snapshot blob.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps `buf` for reading from the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes exactly `n` bytes.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if n > self.remaining() {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `f32`.
    pub fn f32(&mut self) -> Result<f32, SnapshotError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64` length prefix, capped so hostile blobs cannot force
    /// huge allocations: the declared element count must fit in the bytes
    /// remaining assuming at least `min_elem_bytes` bytes per element.
    pub fn len(&mut self, min_elem_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.u64()? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(SnapshotError::Truncated);
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, SnapshotError> {
        let n = self.len(1)?;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| SnapshotError::Malformed("string is not utf-8".to_string()))
    }

    /// Fails unless every byte has been consumed.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::Malformed(format!(
                "{} trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// A type that can be snapshotted to/from the wire format.
pub trait Codec: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] from the underlying reads.
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError>;
}

impl Codec for f32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        r.f32()
    }
}

impl Codec for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        r.u64()
    }
}

impl Codec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u64).to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(r.u64()? as usize)
    }
}

impl Codec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Malformed(format!("invalid bool byte {other}"))),
        }
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for v in self {
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let n = r.len(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(SnapshotError::Malformed(format!(
                "invalid option tag {other}"
            ))),
        }
    }
}

impl<A: Codec> Codec for Transition<A> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.obs.encode(out);
        self.action.encode(out);
        self.reward.encode(out);
        self.next_obs.encode(out);
        self.done.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            obs: Codec::decode(r)?,
            action: Codec::decode(r)?,
            reward: Codec::decode(r)?,
            next_obs: Codec::decode(r)?,
            done: Codec::decode(r)?,
        })
    }
}

impl<A: Codec> Codec for JointTransition<A> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.obs.encode(out);
        self.actions.encode(out);
        self.rewards.encode(out);
        self.next_obs.encode(out);
        self.done.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            obs: Codec::decode(r)?,
            actions: Codec::decode(r)?,
            rewards: Codec::decode(r)?,
            next_obs: Codec::decode(r)?,
            done: Codec::decode(r)?,
        })
    }
}

impl Codec for OptionTransition {
    fn encode(&self, out: &mut Vec<u8>) {
        self.obs.encode(out);
        self.option.encode(out);
        self.other_options.encode(out);
        self.reward.encode(out);
        self.duration.encode(out);
        self.next_obs.encode(out);
        self.done.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            obs: Codec::decode(r)?,
            option: Codec::decode(r)?,
            other_options: Codec::decode(r)?,
            reward: Codec::decode(r)?,
            duration: Codec::decode(r)?,
            next_obs: Codec::decode(r)?,
            done: Codec::decode(r)?,
        })
    }
}

/// Encodes a replay buffer: capacity, head, then items in storage order.
pub fn encode_replay<T: Codec>(buf: &ReplayBuffer<T>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(buf.capacity() as u64).to_le_bytes());
    out.extend_from_slice(&(buf.head() as u64).to_le_bytes());
    buf.items().to_vec_encode(&mut out);
    out
}

// Helper so `encode_replay` can encode a slice without cloning items.
trait SliceEncode {
    fn to_vec_encode(&self, out: &mut Vec<u8>);
}

impl<T: Codec> SliceEncode for [T] {
    fn to_vec_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u64).to_le_bytes());
        for v in self {
            v.encode(out);
        }
    }
}

/// Decodes a replay buffer encoded by [`encode_replay`]. Resumed sampling
/// and eviction are bit-identical to the original buffer.
///
/// # Errors
///
/// Any [`SnapshotError`] on truncation or inconsistent parts.
pub fn decode_replay<T: Codec>(bytes: &[u8]) -> Result<ReplayBuffer<T>, SnapshotError> {
    let mut r = Reader::new(bytes);
    let capacity = r.u64()? as usize;
    let head = r.u64()? as usize;
    let items: Vec<T> = Codec::decode(&mut r)?;
    r.finish()?;
    ReplayBuffer::from_parts(capacity, items, head).map_err(SnapshotError::Malformed)
}

/// Encodes a prioritized replay buffer: exponents, max priority, head,
/// then per-slot occupancy and sum-tree leaf mass.
pub fn encode_per<T: Codec>(buf: &PrioritizedReplay<T>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&buf.alpha().to_le_bytes());
    out.extend_from_slice(&buf.beta().to_le_bytes());
    out.extend_from_slice(&buf.max_priority().to_le_bytes());
    out.extend_from_slice(&(buf.head() as u64).to_le_bytes());
    out.extend_from_slice(&(buf.capacity() as u64).to_le_bytes());
    for i in 0..buf.capacity() {
        let (item, mass) = buf.slot(i);
        match item {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(&mut out);
            }
        }
        out.extend_from_slice(&mass.to_le_bytes());
    }
    out
}

/// Decodes a prioritized replay buffer encoded by [`encode_per`],
/// rebuilding the sum tree so priorities, importance weights, and future
/// evictions match the original exactly.
///
/// # Errors
///
/// Any [`SnapshotError`] on truncation or inconsistent parts.
pub fn decode_per<T: Codec>(bytes: &[u8]) -> Result<PrioritizedReplay<T>, SnapshotError> {
    let mut r = Reader::new(bytes);
    let alpha = r.f32()?;
    let beta = r.f32()?;
    let max_priority = r.f32()?;
    let head = r.u64()? as usize;
    let capacity = r.len(5)?;
    let mut slots = Vec::with_capacity(capacity);
    for _ in 0..capacity {
        let item: Option<T> = Codec::decode(&mut r)?;
        let mass = r.f32()?;
        slots.push((item, mass));
    }
    r.finish()?;
    PrioritizedReplay::from_parts(alpha, beta, max_priority, head, slots)
        .map_err(SnapshotError::Malformed)
}

/// Encodes an [`StdRng`] stream position (32 bytes).
pub fn encode_rng(rng: &StdRng) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    for word in rng.state() {
        out.extend_from_slice(&word.to_le_bytes());
    }
    out
}

/// Decodes an RNG stream position written by [`encode_rng`]; the restored
/// generator continues the stream bit-identically.
///
/// # Errors
///
/// [`SnapshotError::Truncated`]/[`SnapshotError::Malformed`] on bad input.
pub fn decode_rng(bytes: &[u8]) -> Result<StdRng, SnapshotError> {
    let mut r = Reader::new(bytes);
    let mut state = [0u64; 4];
    for word in &mut state {
        *word = r.u64()?;
    }
    r.finish()?;
    Ok(StdRng::from_state(state))
}

/// Encodes a metric [`Recorder`]: every named series with its values.
pub fn encode_recorder(rec: &Recorder) -> Vec<u8> {
    let mut out = Vec::new();
    let names = rec.names();
    out.extend_from_slice(&(names.len() as u64).to_le_bytes());
    for name in names {
        put_string(&mut out, name);
        let series = rec.series(name).unwrap_or(&[]);
        out.extend_from_slice(&(series.len() as u64).to_le_bytes());
        for &v in series {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Decodes a recorder written by [`encode_recorder`].
///
/// # Errors
///
/// Any [`SnapshotError`] on truncation or malformed names.
pub fn decode_recorder(bytes: &[u8]) -> Result<Recorder, SnapshotError> {
    let mut r = Reader::new(bytes);
    let n_series = r.len(8)?;
    let mut series: BTreeMap<String, Vec<f32>> = BTreeMap::new();
    for _ in 0..n_series {
        let name = r.string()?;
        let len = r.len(4)?;
        let raw = r.take(len * 4)?;
        let mut values = Vec::with_capacity(len);
        for chunk in raw.chunks_exact(4) {
            values.push(f32::from_le_bytes(chunk.try_into().unwrap()));
        }
        series.insert(name, values);
    }
    r.finish()?;
    let mut rec = Recorder::default();
    for (name, values) in series {
        for v in values {
            rec.push(&name, v);
        }
    }
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn sample_transition(i: usize) -> Transition<usize> {
        Transition {
            obs: vec![i as f32, -1.0],
            action: i % 4,
            reward: i as f32 * 0.5,
            next_obs: vec![i as f32 + 1.0, 1.0],
            done: i % 3 == 0,
        }
    }

    #[test]
    fn replay_roundtrip_resumes_identically() {
        let mut buf = ReplayBuffer::new(8);
        for i in 0..13 {
            buf.push(sample_transition(i));
        }
        let mut restored: ReplayBuffer<Transition<usize>> =
            decode_replay(&encode_replay(&buf)).unwrap();
        assert_eq!(restored.len(), buf.len());
        assert_eq!(restored.head(), buf.head());
        // Same pushes + samples on both must stay identical.
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        for i in 13..20 {
            buf.push(sample_transition(i));
            restored.push(sample_transition(i));
        }
        let a: Vec<_> = buf.sample(&mut rng_a, 16).iter().map(|t| t.reward).collect();
        let b: Vec<_> = restored
            .sample(&mut rng_b, 16)
            .iter()
            .map(|t| t.reward)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn per_roundtrip_preserves_priorities_and_eviction() {
        let mut buf = PrioritizedReplay::new(6, 0.6, 0.4);
        for i in 0..9usize {
            buf.push(i);
        }
        buf.update_priority(2, 5.0);
        buf.update_priority(4, 0.5);
        let restored: PrioritizedReplay<usize> = decode_per(&encode_per(&buf)).unwrap();
        assert_eq!(restored.len(), buf.len());
        assert_eq!(restored.head(), buf.head());
        assert_eq!(restored.max_priority(), buf.max_priority());
        for i in 0..buf.capacity() {
            let (a, pa) = buf.slot(i);
            let (b, pb) = restored.slot(i);
            assert_eq!(a, b);
            assert_eq!(pa, pb);
        }
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let a: Vec<_> = buf.sample(&mut rng_a, 32).iter().map(|s| s.index).collect();
        let b: Vec<_> = restored
            .sample(&mut rng_b, 32)
            .iter()
            .map(|s| s.index)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn rng_roundtrip_continues_stream() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..31 {
            let _: f32 = rng.gen_range(0.0..1.0);
        }
        let mut restored = decode_rng(&encode_rng(&rng)).unwrap();
        for _ in 0..100 {
            assert_eq!(
                rng.gen_range(0.0f32..1.0),
                restored.gen_range(0.0f32..1.0)
            );
        }
    }

    #[test]
    fn recorder_roundtrip_preserves_series() {
        let mut rec = Recorder::default();
        for i in 0..10 {
            rec.push("reward", i as f32);
            rec.push("loss", -(i as f32));
        }
        let restored = decode_recorder(&encode_recorder(&rec)).unwrap();
        assert_eq!(restored.names(), rec.names());
        for name in rec.names() {
            assert_eq!(restored.series(name), rec.series(name));
        }
    }

    #[test]
    fn option_transition_codec_roundtrip() {
        let t = OptionTransition {
            obs: vec![0.5, -0.25],
            option: 2,
            other_options: vec![0, 3],
            reward: 1.5,
            duration: 7,
            next_obs: vec![0.0],
            done: true,
        };
        let mut bytes = Vec::new();
        t.encode(&mut bytes);
        let mut r = Reader::new(&bytes);
        let back = OptionTransition::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.obs, t.obs);
        assert_eq!(back.option, t.option);
        assert_eq!(back.other_options, t.other_options);
        assert_eq!(back.duration, t.duration);
        assert_eq!(back.done, t.done);
    }

    #[test]
    fn corrupted_blobs_fail_cleanly() {
        let mut buf = ReplayBuffer::new(4);
        for i in 0..4 {
            buf.push(sample_transition(i));
        }
        let bytes = encode_replay(&buf);
        for cut in 0..bytes.len() {
            let r: Result<ReplayBuffer<Transition<usize>>, _> = decode_replay(&bytes[..cut]);
            assert!(r.is_err(), "cut {cut}");
        }
        // Hostile length prefix: claims 2^60 items.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&4u64.to_le_bytes());
        hostile.extend_from_slice(&0u64.to_le_bytes());
        hostile.extend_from_slice(&(1u64 << 60).to_le_bytes());
        let r: Result<ReplayBuffer<Transition<usize>>, _> = decode_replay(&hostile);
        assert!(r.is_err());
    }
}

//! Transition types stored in replay buffers.

/// A one-step transition `(s, a, r, s', done)` with a generic action type
/// (`usize` for discrete algorithms, `Vec<f32>` for continuous ones).
#[derive(Clone, Debug, PartialEq)]
pub struct Transition<A> {
    /// Observation before the action.
    pub obs: Vec<f32>,
    /// Action taken.
    pub action: A,
    /// Reward received.
    pub reward: f32,
    /// Observation after the action.
    pub next_obs: Vec<f32>,
    /// Whether the episode terminated at `next_obs`.
    pub done: bool,
}

/// A transition with a discrete action index.
pub type DiscreteTransition = Transition<usize>;

/// A transition with a continuous action vector.
pub type ContinuousTransition = Transition<Vec<f32>>;

/// A joint multi-agent transition: per-agent observations and actions plus
/// per-agent rewards, as needed by centralized critics (MADDPG/COMA/MAAC).
#[derive(Clone, Debug, PartialEq)]
pub struct JointTransition<A> {
    /// Per-agent observations before the step.
    pub obs: Vec<Vec<f32>>,
    /// Per-agent actions.
    pub actions: Vec<A>,
    /// Per-agent rewards.
    pub rewards: Vec<f32>,
    /// Per-agent observations after the step.
    pub next_obs: Vec<Vec<f32>>,
    /// Whether the episode terminated.
    pub done: bool,
}

/// An SMDP (option-level) transition for the HERO high level: the state
/// when the option was chosen, the agent's option, every other agent's
/// option, the *accumulated* discounted reward over the option's duration
/// `c`, and the state at termination (Sec. III-C).
#[derive(Clone, Debug, PartialEq)]
pub struct OptionTransition {
    /// High-level state when the option started.
    pub obs: Vec<f32>,
    /// The agent's own option index.
    pub option: usize,
    /// The other agents' option indices at selection time.
    pub other_options: Vec<usize>,
    /// Accumulated discounted high-level reward `r_{h,t:t+c}`.
    pub reward: f32,
    /// Option duration in environment steps (`c`).
    pub duration: usize,
    /// High-level state when the option terminated.
    pub next_obs: Vec<f32>,
    /// Whether the episode ended with this option.
    pub done: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_are_cloneable_and_comparable() {
        let t = DiscreteTransition {
            obs: vec![1.0],
            action: 2,
            reward: 0.5,
            next_obs: vec![2.0],
            done: false,
        };
        assert_eq!(t.clone(), t);
        let c = ContinuousTransition {
            obs: vec![1.0],
            action: vec![0.1, -0.2],
            reward: -1.0,
            next_obs: vec![2.0],
            done: true,
        };
        assert_eq!(c.clone(), c);
    }

    #[test]
    fn option_transition_carries_duration() {
        let t = OptionTransition {
            obs: vec![0.0],
            option: 3,
            other_options: vec![1, 2],
            reward: 4.2,
            duration: 5,
            next_obs: vec![1.0],
            done: false,
        };
        assert_eq!(t.duration, 5);
        assert_eq!(t.other_options.len(), 2);
    }
}

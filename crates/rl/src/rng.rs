//! Sampling helpers shared by every algorithm: Gaussian noise (Box–Muller),
//! categorical draws from probabilities/logits, and Gumbel noise for the
//! Gumbel-softmax trick used by MADDPG over discrete actions.

use rand::Rng;

/// One standard-normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// Fills `out` with i.i.d. `N(0, 1)` samples.
pub fn fill_standard_normal<R: Rng + ?Sized>(rng: &mut R, out: &mut [f32]) {
    for v in out.iter_mut() {
        *v = standard_normal(rng);
    }
}

/// Samples an index from an (unnormalized, non-negative) weight vector.
///
/// # Panics
///
/// Panics when `weights` is empty or sums to zero/NaN.
pub fn sample_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f32]) -> usize {
    assert!(!weights.is_empty(), "cannot sample from empty weights");
    let total: f32 = weights.iter().sum();
    assert!(
        total > 0.0 && total.is_finite(),
        "weights must sum to a positive finite value, got {total}"
    );
    let mut threshold = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if threshold < w {
            return i;
        }
        threshold -= w;
    }
    weights.len() - 1
}

/// Samples a class from a categorical distribution given by logits
/// (numerically stable softmax inside).
///
/// # Panics
///
/// Panics when `logits` is empty.
pub fn sample_from_logits<R: Rng + ?Sized>(rng: &mut R, logits: &[f32]) -> usize {
    assert!(!logits.is_empty(), "cannot sample from empty logits");
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let probs: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    sample_weighted(rng, &probs)
}

/// One standard Gumbel sample `-ln(-ln(u))`.
pub fn gumbel<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u: f32 = rng.gen_range(f32::EPSILON..1.0);
    -(-u.ln()).ln()
}

/// Row-wise softmax of a plain slice (convenience for policy heads).
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Row-wise log-softmax of a plain slice.
pub fn log_softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = logits
        .iter()
        .map(|&l| (l - max).exp())
        .sum::<f32>()
        .ln();
    logits.iter().map(|&l| l - max - log_sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[sample_weighted(&mut rng, &[1.0, 2.0, 7.0])] += 1;
        }
        let f2 = counts[2] as f32 / 30_000.0;
        assert!((f2 - 0.7).abs() < 0.02, "f2 = {f2}");
        assert!(counts[0] < counts[1]);
    }

    #[test]
    fn logits_sampling_matches_softmax() {
        let mut rng = StdRng::seed_from_u64(2);
        let logits = [0.0f32, 1.0, 2.0];
        let probs = softmax(&logits);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[sample_from_logits(&mut rng, &logits)] += 1;
        }
        for i in 0..3 {
            let f = counts[i] as f32 / 30_000.0;
            assert!((f - probs[i]).abs() < 0.02, "class {i}: {f} vs {}", probs[i]);
        }
    }

    #[test]
    fn softmax_normalizes_and_log_softmax_matches() {
        let logits = [3.0f32, -1.0, 0.5];
        let p = softmax(&logits);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        let lp = log_softmax(&logits);
        for (a, b) in p.iter().zip(&lp) {
            assert!((a.ln() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn gumbel_argmax_equals_categorical_in_distribution() {
        // Gumbel-max trick sanity check.
        let mut rng = StdRng::seed_from_u64(3);
        let logits = [0.0f32, 1.5];
        let probs = softmax(&logits);
        let mut hits = 0usize;
        let n = 30_000;
        for _ in 0..n {
            let perturbed: Vec<f32> = logits.iter().map(|&l| l + gumbel(&mut rng)).collect();
            if perturbed[1] > perturbed[0] {
                hits += 1;
            }
        }
        let f = hits as f32 / n as f32;
        assert!((f - probs[1]).abs() < 0.02, "{f} vs {}", probs[1]);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn zero_weights_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        sample_weighted(&mut rng, &[0.0, 0.0]);
    }
}

//! Prioritized experience replay (Schaul et al., 2016 — the paper's
//! reference [14]) backed by a sum tree.
//!
//! Samples item `i` with probability `p_i^α / Σ p^α` and reports the
//! importance-sampling weight `(N·P(i))^{-β}` normalized by the maximum
//! weight, so losses can be corrected for the non-uniform sampling.

use rand::Rng;

/// A binary-indexed sum tree over `capacity` leaf priorities.
#[derive(Clone, Debug)]
pub struct SumTree {
    nodes: Vec<f32>,
    capacity: usize,
}

impl SumTree {
    /// Creates a tree with all priorities zero.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sum tree capacity must be positive");
        Self {
            nodes: vec![0.0; 2 * capacity],
            capacity,
        }
    }

    /// Total priority mass.
    pub fn total(&self) -> f32 {
        self.nodes[1]
    }

    /// Priority of leaf `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= capacity`.
    pub fn get(&self, i: usize) -> f32 {
        assert!(i < self.capacity, "leaf index out of range");
        self.nodes[self.capacity + i]
    }

    /// Sets the priority of leaf `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= capacity` or `priority` is negative/NaN.
    pub fn set(&mut self, i: usize, priority: f32) {
        assert!(i < self.capacity, "leaf index out of range");
        assert!(
            priority >= 0.0 && priority.is_finite(),
            "priority must be a non-negative finite value"
        );
        let mut idx = self.capacity + i;
        self.nodes[idx] = priority;
        idx /= 2;
        while idx >= 1 {
            self.nodes[idx] = self.nodes[2 * idx] + self.nodes[2 * idx + 1];
            idx /= 2;
        }
    }

    /// Finds the leaf whose cumulative-priority interval contains `mass`.
    ///
    /// # Panics
    ///
    /// Panics when the tree is empty (total = 0).
    pub fn find(&self, mass: f32) -> usize {
        assert!(self.total() > 0.0, "cannot sample from an empty sum tree");
        let mut mass = mass.clamp(0.0, self.total() - f32::EPSILON.max(self.total() * 1e-7));
        let mut idx = 1;
        while idx < self.capacity {
            let left = 2 * idx;
            if mass < self.nodes[left] {
                idx = left;
            } else {
                mass -= self.nodes[left];
                idx = left + 1;
            }
        }
        idx - self.capacity
    }
}

/// A prioritized replay buffer over items of type `T`.
#[derive(Clone, Debug)]
pub struct PrioritizedReplay<T> {
    items: Vec<Option<T>>,
    tree: SumTree,
    head: usize,
    len: usize,
    alpha: f32,
    beta: f32,
    max_priority: f32,
}

/// A prioritized sample: buffer slot, importance weight, item reference.
#[derive(Debug)]
pub struct PrioritizedSample<'a, T> {
    /// Slot index (pass back to [`PrioritizedReplay::update_priority`]).
    pub index: usize,
    /// Normalized importance-sampling weight in `(0, 1]`.
    pub weight: f32,
    /// The stored item.
    pub item: &'a T,
}

impl<T> PrioritizedReplay<T> {
    /// Creates a buffer with prioritization exponent `alpha` and
    /// importance-correction exponent `beta`.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize, alpha: f32, beta: f32) -> Self {
        let mut items = Vec::with_capacity(capacity);
        items.resize_with(capacity, || None);
        Self {
            items,
            tree: SumTree::new(capacity),
            head: 0,
            len: 0,
            alpha,
            beta,
            max_priority: 1.0,
        }
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds an item with the maximum priority seen so far (so new
    /// experience is sampled at least once).
    pub fn push(&mut self, item: T) {
        let slot = self.head;
        self.items[slot] = Some(item);
        self.tree.set(slot, self.max_priority.powf(self.alpha));
        self.head = (self.head + 1) % self.items.len();
        self.len = (self.len + 1).min(self.items.len());
    }

    /// Samples `n` items proportionally to priority, with importance
    /// weights.
    ///
    /// # Panics
    ///
    /// Panics when the buffer is empty.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<PrioritizedSample<'_, T>> {
        assert!(self.len > 0, "cannot sample from an empty buffer");
        let total = self.tree.total();
        let mut out = Vec::with_capacity(n);
        let mut max_w = 0.0f32;
        let mut picked = Vec::with_capacity(n);
        for _ in 0..n {
            let idx = self.tree.find(rng.gen_range(0.0..total));
            let p = self.tree.get(idx) / total;
            let w = (self.len as f32 * p).powf(-self.beta);
            max_w = max_w.max(w);
            picked.push((idx, w));
        }
        for (idx, w) in picked {
            out.push(PrioritizedSample {
                index: idx,
                weight: w / max_w,
                item: self.items[idx]
                    .as_ref()
                    .expect("sampled slot must be occupied"),
            });
        }
        out
    }

    /// Updates the priority of a previously sampled slot (typically to the
    /// new TD error magnitude).
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range or `priority` is not finite.
    pub fn update_priority(&mut self, index: usize, priority: f32) {
        let p = priority.abs().max(1e-6);
        self.max_priority = self.max_priority.max(p);
        self.tree.set(index, p.powf(self.alpha));
    }

    /// Total number of slots.
    pub fn capacity(&self) -> usize {
        self.items.len()
    }

    /// Prioritization exponent α.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Importance-correction exponent β.
    pub fn beta(&self) -> f32 {
        self.beta
    }

    /// Largest raw priority seen so far (assigned to fresh pushes).
    pub fn max_priority(&self) -> f32 {
        self.max_priority
    }

    /// The eviction cursor (next slot to overwrite).
    pub fn head(&self) -> usize {
        self.head
    }

    /// Slot `i`'s item (if occupied) and its stored leaf mass (`p^α`, the
    /// value actually held by the sum tree).
    ///
    /// # Panics
    ///
    /// Panics when `i >= capacity`.
    pub fn slot(&self, i: usize) -> (Option<&T>, f32) {
        (self.items[i].as_ref(), self.tree.get(i))
    }

    /// Rebuilds a buffer from per-slot state captured via
    /// [`PrioritizedReplay::slot`] plus the scalar bookkeeping, making
    /// future sampling and eviction bit-identical to the original.
    ///
    /// # Errors
    ///
    /// Returns a message when the parts are inconsistent (no slots, an
    /// out-of-range head, or a non-finite/negative priority or
    /// `max_priority`).
    pub fn from_parts(
        alpha: f32,
        beta: f32,
        max_priority: f32,
        head: usize,
        slots: Vec<(Option<T>, f32)>,
    ) -> Result<Self, String> {
        if slots.is_empty() {
            return Err("prioritized replay needs at least one slot".to_string());
        }
        if head >= slots.len() {
            return Err(format!(
                "head {head} out of range for capacity {}",
                slots.len()
            ));
        }
        if !(max_priority.is_finite() && max_priority >= 0.0) {
            return Err(format!("invalid max_priority {max_priority}"));
        }
        let capacity = slots.len();
        let mut tree = SumTree::new(capacity);
        let mut items = Vec::with_capacity(capacity);
        let mut len = 0;
        for (i, (item, mass)) in slots.into_iter().enumerate() {
            if !(mass.is_finite() && mass >= 0.0) {
                return Err(format!("invalid priority mass {mass} at slot {i}"));
            }
            if item.is_some() {
                len += 1;
            }
            tree.set(i, mass);
            items.push(item);
        }
        Ok(Self {
            items,
            tree,
            head,
            len,
            alpha,
            beta,
            max_priority,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sum_tree_totals() {
        let mut t = SumTree::new(4);
        t.set(0, 1.0);
        t.set(1, 2.0);
        t.set(3, 3.0);
        assert!((t.total() - 6.0).abs() < 1e-6);
        t.set(1, 0.0);
        assert!((t.total() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn sum_tree_find_maps_intervals() {
        let mut t = SumTree::new(4);
        t.set(0, 1.0);
        t.set(1, 2.0);
        t.set(2, 3.0);
        assert_eq!(t.find(0.5), 0);
        assert_eq!(t.find(1.5), 1);
        assert_eq!(t.find(2.9), 1);
        assert_eq!(t.find(3.1), 2);
        assert_eq!(t.find(5.9), 2);
    }

    #[test]
    fn sum_tree_non_power_of_two() {
        let mut t = SumTree::new(5);
        for i in 0..5 {
            t.set(i, 1.0);
        }
        assert!((t.total() - 5.0).abs() < 1e-6);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let leaf = t.find(rng.gen_range(0.0..t.total()));
            assert!(leaf < 5);
        }
    }

    #[test]
    fn prioritized_sampling_prefers_high_priority() {
        let mut buf = PrioritizedReplay::new(8, 1.0, 1.0);
        for i in 0..4 {
            buf.push(i);
        }
        // Make item 3 ten times more likely than the rest.
        buf.update_priority(0, 1.0);
        buf.update_priority(1, 1.0);
        buf.update_priority(2, 1.0);
        buf.update_priority(3, 10.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut hits = 0;
        let n = 5000;
        for s in buf.sample(&mut rng, n) {
            if *s.item == 3 {
                hits += 1;
            }
        }
        let frac = hits as f32 / n as f32;
        assert!((frac - 10.0 / 13.0).abs() < 0.05, "frac {frac}");
    }

    #[test]
    fn weights_are_normalized() {
        let mut buf = PrioritizedReplay::new(8, 0.6, 0.4);
        for i in 0..6 {
            buf.push(i);
            buf.update_priority(i, (i + 1) as f32);
        }
        let mut rng = StdRng::seed_from_u64(2);
        let samples = buf.sample(&mut rng, 64);
        assert!(samples.iter().all(|s| s.weight > 0.0 && s.weight <= 1.0 + 1e-6));
        assert!(samples.iter().any(|s| (s.weight - 1.0).abs() < 1e-6));
    }

    #[test]
    fn eviction_wraps_around() {
        let mut buf = PrioritizedReplay::new(3, 1.0, 1.0);
        for i in 0..7 {
            buf.push(i);
        }
        assert_eq!(buf.len(), 3);
        let mut rng = StdRng::seed_from_u64(3);
        for s in buf.sample(&mut rng, 50) {
            assert!(*s.item >= 4, "evicted items must not be sampled");
        }
    }
}

//! Scalar schedules for exploration rates and learning rates.

/// A time-indexed scalar schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Schedule {
    /// Always the same value.
    Constant(f32),
    /// Linear interpolation from `start` to `end` over `steps`, then flat.
    Linear {
        /// Value at step 0.
        start: f32,
        /// Value from `steps` onward.
        end: f32,
        /// Number of steps over which to interpolate.
        steps: usize,
    },
    /// Exponential decay `start · decay^t`, floored at `min`.
    Exponential {
        /// Value at step 0.
        start: f32,
        /// Per-step multiplicative decay in `(0, 1]`.
        decay: f32,
        /// Lower bound.
        min: f32,
    },
}

impl Schedule {
    /// The schedule's value at `step`.
    pub fn value(&self, step: usize) -> f32 {
        match *self {
            Schedule::Constant(v) => v,
            Schedule::Linear { start, end, steps } => {
                if steps == 0 || step >= steps {
                    end
                } else {
                    start + (end - start) * step as f32 / steps as f32
                }
            }
            Schedule::Exponential { start, decay, min } => {
                (start * decay.powi(step as i32)).max(min)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_flat() {
        let s = Schedule::Constant(0.3);
        assert_eq!(s.value(0), 0.3);
        assert_eq!(s.value(1_000_000), 0.3);
    }

    #[test]
    fn linear_endpoints_and_midpoint() {
        let s = Schedule::Linear {
            start: 1.0,
            end: 0.0,
            steps: 100,
        };
        assert_eq!(s.value(0), 1.0);
        assert!((s.value(50) - 0.5).abs() < 1e-6);
        assert_eq!(s.value(100), 0.0);
        assert_eq!(s.value(10_000), 0.0);
    }

    #[test]
    fn linear_zero_steps_is_end() {
        let s = Schedule::Linear {
            start: 1.0,
            end: 0.1,
            steps: 0,
        };
        assert_eq!(s.value(0), 0.1);
    }

    #[test]
    fn exponential_decays_to_floor() {
        let s = Schedule::Exponential {
            start: 1.0,
            decay: 0.5,
            min: 0.05,
        };
        assert_eq!(s.value(0), 1.0);
        assert!((s.value(2) - 0.25).abs() < 1e-6);
        assert_eq!(s.value(100), 0.05);
    }
}

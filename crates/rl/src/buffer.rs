//! Uniform experience replay (the paper's `D_h` / `D_l` buffers, capacity
//! 100 000 per Table I).

use rand::Rng;

/// A fixed-capacity ring buffer with uniform random sampling.
///
/// # Examples
///
/// ```
/// use hero_rl::buffer::ReplayBuffer;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut buf = ReplayBuffer::new(3);
/// for i in 0..5 {
///     buf.push(i);
/// }
/// assert_eq!(buf.len(), 3); // oldest entries evicted
/// let mut rng = StdRng::seed_from_u64(0);
/// let batch = buf.sample(&mut rng, 2);
/// assert_eq!(batch.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct ReplayBuffer<T> {
    items: Vec<T>,
    capacity: usize,
    head: usize,
}

impl<T> ReplayBuffer<T> {
    /// Creates a buffer holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay buffer capacity must be positive");
        Self {
            items: Vec::with_capacity(capacity.min(1024)),
            capacity,
            head: 0,
        }
    }

    /// Maximum number of items retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently stored.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the buffer has reached capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Adds an item, evicting the oldest when full.
    pub fn push(&mut self, item: T) {
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            self.items[self.head] = item;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Samples `n` items uniformly with replacement.
    ///
    /// # Panics
    ///
    /// Panics when the buffer is empty.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<&T> {
        assert!(!self.is_empty(), "cannot sample from an empty buffer");
        (0..n)
            .map(|_| &self.items[rng.gen_range(0..self.items.len())])
            .collect()
    }

    /// Samples `n` distinct indices (or all indices when `n >= len`).
    pub fn sample_indices<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<usize> {
        let len = self.items.len();
        if n >= len {
            return (0..len).collect();
        }
        // Partial Fisher–Yates over an index vector.
        let mut idx: Vec<usize> = (0..len).collect();
        for i in 0..n {
            let j = rng.gen_range(i..len);
            idx.swap(i, j);
        }
        idx.truncate(n);
        idx
    }

    /// Item at a raw index (stable between pushes).
    pub fn get(&self, index: usize) -> Option<&T> {
        self.items.get(index)
    }

    /// Iterates over all stored items (no particular order once wrapped).
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    /// Removes all items.
    pub fn clear(&mut self) {
        self.items.clear();
        self.head = 0;
    }

    /// The eviction cursor (next slot to overwrite once full) — exposed
    /// together with [`ReplayBuffer::items`] so checkpoints can rebuild the
    /// buffer bit-identically via [`ReplayBuffer::from_parts`].
    pub fn head(&self) -> usize {
        self.head
    }

    /// All stored items in raw storage order (not insertion order once the
    /// buffer has wrapped).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Rebuilds a buffer from state captured via [`ReplayBuffer::items`] /
    /// [`ReplayBuffer::head`]. Future pushes, samples, and evictions behave
    /// exactly as they would have on the original.
    ///
    /// # Errors
    ///
    /// Returns a message when the parts are inconsistent (zero capacity,
    /// more items than capacity, or an out-of-range head).
    pub fn from_parts(capacity: usize, items: Vec<T>, head: usize) -> Result<Self, String> {
        if capacity == 0 {
            return Err("replay buffer capacity must be positive".to_string());
        }
        if items.len() > capacity {
            return Err(format!(
                "{} items exceed capacity {capacity}",
                items.len()
            ));
        }
        if head >= capacity {
            return Err(format!("head {head} out of range for capacity {capacity}"));
        }
        Ok(Self {
            items,
            capacity,
            head,
        })
    }
}

impl<'a, T> IntoIterator for &'a ReplayBuffer<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn push_until_full_then_evict_oldest() {
        let mut buf = ReplayBuffer::new(3);
        for i in 0..3 {
            buf.push(i);
        }
        assert!(buf.is_full());
        buf.push(3);
        let items: Vec<i32> = buf.iter().copied().collect();
        assert_eq!(buf.len(), 3);
        assert!(!items.contains(&0), "oldest item must be evicted");
        assert!(items.contains(&3));
    }

    #[test]
    fn eviction_is_fifo_over_many_pushes() {
        let mut buf = ReplayBuffer::new(4);
        for i in 0..100 {
            buf.push(i);
        }
        let mut items: Vec<i32> = buf.iter().copied().collect();
        items.sort_unstable();
        assert_eq!(items, vec![96, 97, 98, 99]);
    }

    #[test]
    fn sample_returns_requested_count() {
        let mut buf = ReplayBuffer::new(10);
        for i in 0..5 {
            buf.push(i);
        }
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(buf.sample(&mut rng, 32).len(), 32);
    }

    #[test]
    fn sample_indices_distinct() {
        let mut buf = ReplayBuffer::new(100);
        for i in 0..50 {
            buf.push(i);
        }
        let mut rng = StdRng::seed_from_u64(1);
        let idx = buf.sample_indices(&mut rng, 20);
        assert_eq!(idx.len(), 20);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "indices must be distinct");
        assert!(sorted.iter().all(|&i| i < 50));
    }

    #[test]
    fn sample_indices_caps_at_len() {
        let mut buf = ReplayBuffer::new(10);
        for i in 0..4 {
            buf.push(i);
        }
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(buf.sample_indices(&mut rng, 100).len(), 4);
    }

    #[test]
    #[should_panic(expected = "empty buffer")]
    fn sampling_empty_panics() {
        let buf: ReplayBuffer<i32> = ReplayBuffer::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        buf.sample(&mut rng, 1);
    }

    #[test]
    fn clear_resets() {
        let mut buf = ReplayBuffer::new(2);
        buf.push(1);
        buf.push(2);
        buf.push(3);
        buf.clear();
        assert!(buf.is_empty());
        buf.push(7);
        assert_eq!(buf.iter().copied().collect::<Vec<_>>(), vec![7]);
    }
}

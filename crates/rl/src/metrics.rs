//! Episode metrics, learning curves, and CSV export — the bookkeeping the
//! paper's "master node" performed on the testbed.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

/// A windowed moving average (the smoothing applied to the paper's
/// learning-curve figures).
#[derive(Clone, Debug)]
pub struct MovingAverage {
    window: usize,
    values: Vec<f32>,
    sum: f32,
    head: usize,
}

impl MovingAverage {
    /// Creates a moving average over the last `window` observations.
    ///
    /// # Panics
    ///
    /// Panics when `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            values: Vec::new(),
            sum: 0.0,
            head: 0,
        }
    }

    /// Adds an observation and returns the current average.
    pub fn push(&mut self, v: f32) -> f32 {
        if self.values.len() < self.window {
            self.values.push(v);
            self.sum += v;
        } else {
            self.sum += v - self.values[self.head];
            self.values[self.head] = v;
            self.head = (self.head + 1) % self.window;
        }
        self.value()
    }

    /// The current average (`0.0` before any observation).
    pub fn value(&self) -> f32 {
        if self.values.is_empty() {
            0.0
        } else {
            self.sum / self.values.len() as f32
        }
    }

    /// Number of observations currently inside the window.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no observation has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Collects named scalar series (one value per episode) and exports them
/// as CSV.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    series: BTreeMap<String, Vec<f32>>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a value to the named series.
    pub fn push(&mut self, name: &str, value: f32) {
        self.series.entry(name.to_string()).or_default().push(value);
    }

    /// The recorded values of a series, if present.
    pub fn series(&self, name: &str) -> Option<&[f32]> {
        self.series.get(name).map(Vec::as_slice)
    }

    /// Names of all series, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// Windowed smoothing of a series (e.g. for plotting), or `None` if
    /// the series does not exist.
    pub fn smoothed(&self, name: &str, window: usize) -> Option<Vec<f32>> {
        let raw = self.series.get(name)?;
        let mut ma = MovingAverage::new(window);
        Some(raw.iter().map(|&v| ma.push(v)).collect())
    }

    /// Mean of the last `n` values of a series (`None` when absent or
    /// empty).
    pub fn tail_mean(&self, name: &str, n: usize) -> Option<f32> {
        let raw = self.series.get(name)?;
        if raw.is_empty() {
            return None;
        }
        let tail = &raw[raw.len().saturating_sub(n)..];
        Some(tail.iter().sum::<f32>() / tail.len() as f32)
    }

    /// Writes every series as CSV columns (`index,name1,name2,…`); shorter
    /// series leave trailing cells empty.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        self.write_csv_to(&mut w)
    }

    /// Writes the CSV into any writer (see [`Recorder::write_csv`]).
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_csv_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        write!(w, "index")?;
        for name in self.series.keys() {
            write!(w, ",{name}")?;
        }
        writeln!(w)?;
        let rows = self.series.values().map(Vec::len).max().unwrap_or(0);
        for i in 0..rows {
            write!(w, "{i}")?;
            for values in self.series.values() {
                match values.get(i) {
                    Some(v) => write!(w, ",{v}")?,
                    None => write!(w, ",")?,
                }
            }
            writeln!(w)?;
        }
        w.flush()
    }
}

/// Summary statistics of a slice.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f32,
    /// Population standard deviation.
    pub std: f32,
    /// Minimum.
    pub min: f32,
    /// Maximum.
    pub max: f32,
}

/// Computes [`Summary`] statistics (`None` for an empty slice).
pub fn summarize(values: &[f32]) -> Option<Summary> {
    if values.is_empty() {
        return None;
    }
    let n = values.len() as f32;
    let mean = values.iter().sum::<f32>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    Some(Summary {
        mean,
        std: var.sqrt(),
        min: values.iter().cloned().fold(f32::INFINITY, f32::min),
        max: values.iter().cloned().fold(f32::NEG_INFINITY, f32::max),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_window_behaviour() {
        let mut ma = MovingAverage::new(3);
        assert_eq!(ma.push(3.0), 3.0);
        assert_eq!(ma.push(6.0), 4.5);
        assert_eq!(ma.push(9.0), 6.0);
        // Window slides: (6 + 9 + 12) / 3.
        assert_eq!(ma.push(12.0), 9.0);
        assert_eq!(ma.len(), 3);
    }

    #[test]
    fn recorder_series_and_smoothing() {
        let mut r = Recorder::new();
        for v in [0.0, 1.0, 2.0, 3.0] {
            r.push("reward", v);
        }
        assert_eq!(r.series("reward").unwrap().len(), 4);
        let sm = r.smoothed("reward", 2).unwrap();
        assert_eq!(sm, vec![0.0, 0.5, 1.5, 2.5]);
        assert_eq!(r.tail_mean("reward", 2), Some(2.5));
        assert!(r.series("missing").is_none());
    }

    #[test]
    fn csv_layout() {
        let mut r = Recorder::new();
        r.push("a", 1.0);
        r.push("a", 2.0);
        r.push("b", 10.0);
        let mut buf = Vec::new();
        r.write_csv_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "index,a,b");
        assert_eq!(lines[1], "0,1,10");
        assert_eq!(lines[2], "1,2,");
    }

    #[test]
    fn summary_statistics() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std - 1.118).abs() < 1e-3);
        assert!(summarize(&[]).is_none());
    }
}

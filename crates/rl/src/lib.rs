//! # hero-rl
//!
//! The reinforcement-learning toolkit shared by HERO and every baseline in
//! this reproduction: transition types, uniform and prioritized replay
//! buffers, exploration strategies, scalar schedules, target-network
//! updates, episode metrics with CSV export, sampling helpers, and a
//! parallel rollout driver.
//!
//! ## Quickstart
//!
//! ```
//! use hero_rl::buffer::ReplayBuffer;
//! use hero_rl::transition::DiscreteTransition;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut buf = ReplayBuffer::new(100_000); // Table I capacity
//! buf.push(DiscreteTransition {
//!     obs: vec![0.0; 18],
//!     action: 2,
//!     reward: 0.4,
//!     next_obs: vec![0.1; 18],
//!     done: false,
//! });
//! let mut rng = StdRng::seed_from_u64(0);
//! let batch = buf.sample(&mut rng, 4);
//! assert_eq!(batch.len(), 4);
//! ```

#![warn(missing_docs)]

pub use hero_telemetry as telemetry;

pub mod buffer;
pub mod explore;
pub mod metrics;
pub mod per;
pub mod rng;
pub mod rollout;
pub mod schedule;
pub mod snapshot;
pub mod target;
pub mod transition;

pub use buffer::ReplayBuffer;
pub use explore::{greedy, EpsilonGreedy, GaussianNoise, OrnsteinUhlenbeck};
pub use metrics::{summarize, MovingAverage, Recorder, Summary};
pub use per::{PrioritizedReplay, PrioritizedSample, SumTree};
pub use schedule::Schedule;
pub use snapshot::{Codec, SnapshotError};
pub use target::{hard_update, soft_update};
pub use transition::{
    ContinuousTransition, DiscreteTransition, JointTransition, OptionTransition, Transition,
};

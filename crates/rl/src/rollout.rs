//! Parallel rollout driving — the paper trains the low-level skills in
//! "parallel training environments" (Sec. V-C); this module provides the
//! worker fan-out and a progress channel for streaming per-episode metrics
//! back to the coordinator.

use std::collections::BTreeMap;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::buffer::ReplayBuffer;
use crate::metrics::Recorder;

/// A per-episode progress report emitted by a worker.
#[derive(Clone, Debug, PartialEq)]
pub struct EpisodeReport {
    /// Worker index.
    pub worker: usize,
    /// Episode index local to the worker.
    pub episode: usize,
    /// Metric name (e.g. `"reward"`).
    pub metric: String,
    /// Metric value.
    pub value: f32,
}

/// Runs `workers` jobs on separate threads and collects their results in
/// worker order. Each job receives its worker index.
///
/// # Examples
///
/// ```
/// let squares = hero_rl::rollout::run_parallel(4, |w| w * w);
/// assert_eq!(squares, vec![0, 1, 4, 9]);
/// ```
pub fn run_parallel<T, F>(workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = Vec::with_capacity(workers);
    out.resize_with(workers, || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let job = &job;
            handles.push(scope.spawn(move || job(w)));
        }
        for (slot, handle) in out.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("rollout worker panicked"));
        }
    });
    out.into_iter().map(|v| v.expect("worker result set")).collect()
}

/// A channel hub aggregating [`EpisodeReport`]s from parallel workers into
/// a shared [`Recorder`] keyed as `"<metric>/w<worker>"`.
#[derive(Debug)]
pub struct ProgressHub {
    sender: Sender<EpisodeReport>,
    receiver: Receiver<EpisodeReport>,
    recorder: Mutex<Recorder>,
}

impl Default for ProgressHub {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgressHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        let (sender, receiver) = unbounded();
        Self {
            sender,
            receiver,
            recorder: Mutex::new(Recorder::new()),
        }
    }

    /// A sender handle for a worker thread.
    pub fn sender(&self) -> Sender<EpisodeReport> {
        self.sender.clone()
    }

    /// Drains all pending reports into the recorder, returning how many
    /// were processed.
    pub fn drain(&self) -> usize {
        let mut n = 0;
        let mut rec = self.recorder.lock();
        while let Ok(report) = self.receiver.try_recv() {
            rec.push(&format!("{}/w{}", report.metric, report.worker), report.value);
            n += 1;
        }
        n
    }

    /// Drains and then snapshots the recorder.
    pub fn snapshot(&self) -> Recorder {
        self.drain();
        self.recorder.lock().clone()
    }
}

/// A producer handle for a [`TransitionFeed`].
///
/// `send` blocks while the feed's bounded channel is full, giving natural
/// backpressure: fast actors wait for the learner instead of growing an
/// unbounded queue.
#[derive(Clone, Debug)]
pub struct FeedSender<T> {
    inner: Sender<(u64, T)>,
}

impl<T> FeedSender<T> {
    /// Sends `item` tagged with its global sequence number. Returns
    /// `false` when the consumer is gone (the item is dropped).
    pub fn send(&self, seq: u64, item: T) -> bool {
        self.inner.send((seq, item)).is_ok()
    }
}

/// A bounded, sequence-ordered transition feed from rollout producers to
/// a learner-side replay buffer.
///
/// Producers tag every item with a caller-assigned global sequence number
/// (e.g. the step counter a deterministic scheduler hands out). The
/// consumer side releases items strictly in sequence order, stashing
/// early arrivals, so the replay buffer's insertion order — and therefore
/// everything sampled from it — is independent of thread timing.
#[derive(Debug)]
pub struct TransitionFeed<T> {
    sender: Sender<(u64, T)>,
    receiver: Receiver<(u64, T)>,
    stashed: BTreeMap<u64, T>,
    next: u64,
}

impl<T> TransitionFeed<T> {
    /// Creates a feed whose channel holds at most `capacity` in-flight
    /// items (producers block beyond that).
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "feed capacity must be positive");
        let (sender, receiver) = bounded(capacity);
        Self {
            sender,
            receiver,
            stashed: BTreeMap::new(),
            next: 0,
        }
    }

    /// A producer handle (cloneable across worker threads).
    pub fn sender(&self) -> FeedSender<T> {
        FeedSender {
            inner: self.sender.clone(),
        }
    }

    /// The next sequence number the feed will release.
    pub fn next_seq(&self) -> u64 {
        self.next
    }

    /// Items received out of order and still waiting for their
    /// predecessors.
    pub fn stashed(&self) -> usize {
        self.stashed.len()
    }

    /// Drains everything currently available into `sink`, in strict
    /// sequence order. Out-of-order arrivals are stashed for a later
    /// drain. Returns how many items were released.
    pub fn drain(&mut self, mut sink: impl FnMut(T)) -> usize {
        while let Ok((seq, item)) = self.receiver.try_recv() {
            debug_assert!(seq >= self.next, "sequence number {seq} reused");
            self.stashed.insert(seq, item);
        }
        let mut released = 0;
        while let Some(item) = self.stashed.remove(&self.next) {
            sink(item);
            self.next += 1;
            released += 1;
        }
        released
    }

    /// [`Self::drain`] straight into a replay buffer.
    pub fn drain_into(&mut self, buffer: &mut ReplayBuffer<T>) -> usize {
        let mut fed = 0;
        let released = self.drain(|item| {
            fed += 1;
            buffer.push(item);
        });
        debug_assert_eq!(fed, released);
        released
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_parallel_preserves_worker_order() {
        let results = run_parallel(8, |w| w as i32 * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn run_parallel_single_worker() {
        assert_eq!(run_parallel(1, |_| "done"), vec!["done"]);
    }

    #[test]
    fn progress_hub_aggregates_reports() {
        let hub = ProgressHub::new();
        run_parallel(3, |w| {
            let tx = hub.sender();
            for e in 0..4 {
                tx.send(EpisodeReport {
                    worker: w,
                    episode: e,
                    metric: "reward".into(),
                    value: (w * 4 + e) as f32,
                })
                .unwrap();
            }
        });
        let drained = hub.drain();
        assert_eq!(drained, 12);
        let rec = hub.snapshot();
        assert_eq!(rec.series("reward/w0").unwrap(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(rec.series("reward/w2").unwrap().len(), 4);
    }

    #[test]
    fn feed_releases_in_sequence_order() {
        let mut feed = TransitionFeed::bounded(16);
        let tx = feed.sender();
        // Arrivals shuffled: 2, 0, 3 — only the contiguous prefix drains.
        assert!(tx.send(2, "c"));
        assert!(tx.send(0, "a"));
        assert!(tx.send(3, "d"));
        let mut got = Vec::new();
        assert_eq!(feed.drain(|v| got.push(v)), 1);
        assert_eq!(got, vec!["a"]);
        assert_eq!(feed.stashed(), 2);
        assert!(tx.send(1, "b"));
        assert_eq!(feed.drain(|v| got.push(v)), 3);
        assert_eq!(got, vec!["a", "b", "c", "d"]);
        assert_eq!(feed.next_seq(), 4);
        assert_eq!(feed.stashed(), 0);
    }

    #[test]
    fn feed_buffer_contents_independent_of_thread_timing() {
        // 4 producers interleave arbitrarily; disjoint sequence strides
        // mean the drained order (hence buffer contents) is always the
        // same.
        let fill = |feed: &mut TransitionFeed<u64>| {
            let tx = feed.sender();
            run_parallel(4, |w| {
                let tx = tx.clone();
                for i in 0..8u64 {
                    assert!(tx.send(i * 4 + w as u64, i * 4 + w as u64));
                }
            });
            let mut buf = ReplayBuffer::new(64);
            assert_eq!(feed.drain_into(&mut buf), 32);
            buf
        };
        let a = fill(&mut TransitionFeed::bounded(32));
        let b = fill(&mut TransitionFeed::bounded(32));
        let dump = |buf: &ReplayBuffer<u64>| {
            use rand::{rngs::StdRng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(7);
            buf.sample(&mut rng, 16).into_iter().copied().collect::<Vec<_>>()
        };
        assert_eq!(dump(&a), dump(&b));
        assert_eq!(dump(&a), dump(&a));
    }

    #[test]
    fn feed_bounded_capacity_blocks_producers() {
        // A capacity-1 feed forces producers to wait for the consumer:
        // with 3 items sent from another thread, the consumer must drain
        // at least twice before the producer can finish.
        let mut feed = TransitionFeed::bounded(1);
        let tx = feed.sender();
        std::thread::scope(|s| {
            let producer = s.spawn(move || {
                for i in 0..3u64 {
                    assert!(tx.send(i, i));
                }
            });
            let mut got = Vec::new();
            while got.len() < 3 {
                feed.drain(|v| got.push(v));
                std::thread::yield_now();
            }
            producer.join().unwrap();
            assert_eq!(got, vec![0, 1, 2]);
        });
    }
}

//! Parallel rollout driving — the paper trains the low-level skills in
//! "parallel training environments" (Sec. V-C); this module provides the
//! worker fan-out and a progress channel for streaming per-episode metrics
//! back to the coordinator.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::metrics::Recorder;

/// A per-episode progress report emitted by a worker.
#[derive(Clone, Debug, PartialEq)]
pub struct EpisodeReport {
    /// Worker index.
    pub worker: usize,
    /// Episode index local to the worker.
    pub episode: usize,
    /// Metric name (e.g. `"reward"`).
    pub metric: String,
    /// Metric value.
    pub value: f32,
}

/// Runs `workers` jobs on separate threads and collects their results in
/// worker order. Each job receives its worker index.
///
/// # Examples
///
/// ```
/// let squares = hero_rl::rollout::run_parallel(4, |w| w * w);
/// assert_eq!(squares, vec![0, 1, 4, 9]);
/// ```
pub fn run_parallel<T, F>(workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<Option<T>> = Vec::with_capacity(workers);
    out.resize_with(workers, || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let job = &job;
            handles.push(scope.spawn(move || job(w)));
        }
        for (slot, handle) in out.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("rollout worker panicked"));
        }
    });
    out.into_iter().map(|v| v.expect("worker result set")).collect()
}

/// A channel hub aggregating [`EpisodeReport`]s from parallel workers into
/// a shared [`Recorder`] keyed as `"<metric>/w<worker>"`.
#[derive(Debug)]
pub struct ProgressHub {
    sender: Sender<EpisodeReport>,
    receiver: Receiver<EpisodeReport>,
    recorder: Mutex<Recorder>,
}

impl Default for ProgressHub {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgressHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        let (sender, receiver) = unbounded();
        Self {
            sender,
            receiver,
            recorder: Mutex::new(Recorder::new()),
        }
    }

    /// A sender handle for a worker thread.
    pub fn sender(&self) -> Sender<EpisodeReport> {
        self.sender.clone()
    }

    /// Drains all pending reports into the recorder, returning how many
    /// were processed.
    pub fn drain(&self) -> usize {
        let mut n = 0;
        let mut rec = self.recorder.lock();
        while let Ok(report) = self.receiver.try_recv() {
            rec.push(&format!("{}/w{}", report.metric, report.worker), report.value);
            n += 1;
        }
        n
    }

    /// Drains and then snapshots the recorder.
    pub fn snapshot(&self) -> Recorder {
        self.drain();
        self.recorder.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_parallel_preserves_worker_order() {
        let results = run_parallel(8, |w| w as i32 * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn run_parallel_single_worker() {
        assert_eq!(run_parallel(1, |_| "done"), vec!["done"]);
    }

    #[test]
    fn progress_hub_aggregates_reports() {
        let hub = ProgressHub::new();
        run_parallel(3, |w| {
            let tx = hub.sender();
            for e in 0..4 {
                tx.send(EpisodeReport {
                    worker: w,
                    episode: e,
                    metric: "reward".into(),
                    value: (w * 4 + e) as f32,
                })
                .unwrap();
            }
        });
        let drained = hub.drain();
        assert_eq!(drained, 12);
        let rec = hub.snapshot();
        assert_eq!(rec.series("reward/w0").unwrap(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(rec.series("reward/w2").unwrap().len(), 4);
    }
}

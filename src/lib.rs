//! # hero
//!
//! A from-scratch Rust reproduction of **"Hierarchical Reinforcement
//! Learning with Opponent Modeling for Distributed Multi-agent
//! Cooperation"** (ICDCS 2022), including every substrate the paper
//! depends on:
//!
//! * [`autograd`] — tape-based reverse-mode automatic differentiation,
//!   neural-network layers, optimizers, losses, checkpointing,
//! * [`sim`] — a deterministic 2D multi-vehicle driving simulator
//!   (the Gazebo substitute) with lidar/camera sensing, intrinsic-reward
//!   skill environments, and a sim-to-real testbed proxy,
//! * [`rl`] — replay buffers (uniform and prioritized), exploration,
//!   schedules, target networks, metrics, and parallel rollouts,
//! * [`baselines`] — Independent DQN, COMA, MADDPG, MAAC, SAC, and DDPG,
//! * [`core`] — HERO itself: the hierarchical option framework, the
//!   opponent-modeling network, the decentralized high-level
//!   actor–critic, the SAC skill library, and the two-stage trainer.
//!
//! See the repository's `README.md` for the architecture overview,
//! `DESIGN.md` for the substitution table and per-experiment index, and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use hero::prelude::*;
//!
//! // Drive the cooperative lane-change world with coasting vehicles.
//! let mut env = hero::sim::scenario::congestion(EnvConfig::default(), 0);
//! let _obs = env.reset();
//! let cmds: Vec<VehicleCommand> = (0..env.num_vehicles())
//!     .map(|i| VehicleCommand::coast(env.vehicle_state(i).speed))
//!     .collect();
//! let out = env.step(&cmds);
//! assert_eq!(out.rewards.len(), 4);
//! ```

#![warn(missing_docs)]

pub use hero_autograd as autograd;
pub use hero_baselines as baselines;
pub use hero_core as core;
pub use hero_rl as rl;
pub use hero_sim as sim;

/// The most common imports for building on this reproduction.
pub mod prelude {
    pub use hero_autograd::{Graph, Parameter, Tensor};
    pub use hero_baselines::common::MultiAgentAlgorithm;
    pub use hero_core::{
        evaluate_team, train_team, EvalStats, HeroConfig, HeroTeam, SkillLibrary,
        SkillTrainingConfig, TrainOptions,
    };
    pub use hero_rl::{Recorder, ReplayBuffer, Schedule};
    pub use hero_sim::{
        CooperativeWorld, DrivingOption, EnvConfig, LaneChangeEnv, Observation, SimToRealConfig,
        SimToRealEnv, VehicleCommand,
    };
}
